// Trial fast path: word-first-access tracking, the dormancy shortcut, and
// the inject-point snapshot restore. The load-bearing property throughout is
// byte-identity with the slow path — the fast path is pure execution policy.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "inject/cache.h"
#include "inject/campaign.h"
#include "inject/report.h"
#include "inject/trial.h"
#include "obs/metrics.h"
#include "obs/prop_trace.h"
#include "state/state_registry.h"
#include "uarch/core.h"
#include "util/cancel.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

// ---------------------------------------------------------------------------
// WordFirstAccessTracker
// ---------------------------------------------------------------------------

TEST(WordFirstAccessTracker, ReportsEarliestAccessAtOrAfterWatchCycle) {
  WordFirstAccessTracker t(8);
  t.Watch(3, 10);
  t.Seal();
  t.SetCycle(8);
  t.OnAccess(3, /*is_write=*/true);  // before the watch window: ignored
  EXPECT_FALSE(t.Done());
  t.SetCycle(12);
  t.OnAccess(3, /*is_write=*/false);
  EXPECT_TRUE(t.Done());
  t.SetCycle(13);
  t.OnAccess(3, /*is_write=*/true);  // later accesses must not overwrite
  const auto fa = t.Lookup(3, 10);
  EXPECT_EQ(fa.cycle, 12);
  EXPECT_FALSE(fa.is_write);
}

TEST(WordFirstAccessTracker, LaterWatchOnSameWordResolvesIndependently) {
  WordFirstAccessTracker t(8);
  t.Watch(5, 4);
  t.Watch(5, 9);
  t.Seal();
  t.SetCycle(6);
  t.OnAccess(5, /*is_write=*/true);
  t.SetCycle(11);
  t.OnAccess(5, /*is_write=*/false);
  const auto a = t.Lookup(5, 4);
  EXPECT_EQ(a.cycle, 6);
  EXPECT_TRUE(a.is_write);
  const auto b = t.Lookup(5, 9);
  EXPECT_EQ(b.cycle, 11);
  EXPECT_FALSE(b.is_write);
}

TEST(WordFirstAccessTracker, OneAccessResolvesEveryPendingEarlierWatch) {
  WordFirstAccessTracker t(4);
  t.Watch(2, 3);
  t.Watch(2, 7);
  t.Seal();
  t.SetCycle(9);
  t.OnAccess(2, /*is_write=*/true);
  EXPECT_EQ(t.Lookup(2, 3).cycle, 9);
  EXPECT_EQ(t.Lookup(2, 7).cycle, 9);
  EXPECT_TRUE(t.Done());
}

TEST(WordFirstAccessTracker, DuplicatePairsCollapse) {
  WordFirstAccessTracker t(4);
  t.Watch(2, 7);
  t.Watch(2, 7);
  t.Seal();
  EXPECT_FALSE(t.Done());
  t.SetCycle(7);
  t.OnAccess(2, /*is_write=*/true);
  EXPECT_TRUE(t.Done());  // one access retires the collapsed pair
}

TEST(WordFirstAccessTracker, WatchedDistinguishesNoDataFromNoAccess) {
  WordFirstAccessTracker t(4);
  t.Watch(1, 5);
  t.Seal();
  // Never accessed: a provable "latent" verdict...
  EXPECT_TRUE(t.Watched(1, 5));
  EXPECT_EQ(t.Lookup(1, 5).cycle, -1);
  // ...which Lookup alone cannot distinguish from "never watched".
  EXPECT_FALSE(t.Watched(1, 6));
  EXPECT_FALSE(t.Watched(0, 5));
  EXPECT_EQ(t.Lookup(0, 5).cycle, -1);
}

TEST(WordFirstAccessTracker, RejectsLateWatchAndBadWord) {
  WordFirstAccessTracker t(4);
  EXPECT_THROW(t.Watch(4, 0), std::out_of_range);
  t.Seal();
  EXPECT_THROW(t.Watch(0, 0), std::logic_error);
}

// A value-preserving Set must still count as a write: the golden machine
// overwrote the word, so an injected bit there is gone from that cycle on.
TEST(StateRegistryTracking, ValuePreservingSetCountsAsWrite) {
  StateRegistry reg;
  StateField f = reg.Allocate("f", StateCat::kCtrl, Storage::kLatch, 4, 16);
  f.Set(1, 42);
  WordFirstAccessTracker t(reg.WordCount());
  for (std::size_t w = 0; w < reg.WordCount(); ++w) t.Watch(w, 1);
  t.Seal();
  reg.SetAccessTracker(&t);
  t.SetCycle(2);
  f.Set(1, 42);  // no-change write
  reg.SetAccessTracker(nullptr);
  int resolved = 0;
  for (std::size_t w = 0; w < reg.WordCount(); ++w) {
    const auto fa = t.Lookup(w, 1);
    if (fa.cycle < 0) continue;
    ++resolved;
    EXPECT_EQ(fa.cycle, 2);
    EXPECT_TRUE(fa.is_write);
  }
  EXPECT_EQ(resolved, 1);
}

TEST(StateRegistryTracking, ReadBeforeWriteReportsRead) {
  StateRegistry reg;
  StateField f = reg.Allocate("f", StateCat::kData, Storage::kRam, 2, 32);
  WordFirstAccessTracker t(reg.WordCount());
  for (std::size_t w = 0; w < reg.WordCount(); ++w) t.Watch(w, 1);
  t.Seal();
  reg.SetAccessTracker(&t);
  t.SetCycle(3);
  (void)f.Get(0);
  t.SetCycle(4);
  f.Set(0, 7);
  reg.SetAccessTracker(nullptr);
  int resolved = 0;
  for (std::size_t w = 0; w < reg.WordCount(); ++w) {
    const auto fa = t.Lookup(w, 1);
    if (fa.cycle < 0) continue;
    ++resolved;
    EXPECT_EQ(fa.cycle, 3);
    EXPECT_FALSE(fa.is_write);  // the read wins; simulation is required
  }
  EXPECT_EQ(resolved, 1);
}

// ---------------------------------------------------------------------------
// TrialRunner fast path vs slow path
// ---------------------------------------------------------------------------

struct FastpathRig {
  CampaignSpec spec;
  std::shared_ptr<const GoldenRun> golden;
  std::vector<TrialSpec> specs;
};

CampaignSpec SmallCampaign(int trials) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = trials;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 2500;
  spec.golden.slack = 1000;
  return spec;
}

const FastpathRig& Rig() {
  static const FastpathRig rig = [] {
    FastpathRig r;
    r.spec = SmallCampaign(160);
    const Program program =
        BuildWorkload(WorkloadByName(r.spec.workload), kCampaignIters);
    Core probe(r.spec.core, program);
    r.specs = MakeTrialSpecs(
        r.spec, probe.registry().InjectableBits(r.spec.include_ram));
    const FastPathPlan plan =
        PlanFastPath(r.spec.golden, r.specs, probe.registry());
    r.golden = RecordGolden(r.spec.core, program, r.spec.golden, nullptr,
                            &plan);
    return r;
  }();
  return rig;
}

void ExpectSameRecord(const TrialRecord& f, const TrialRecord& s,
                      std::size_t i) {
  EXPECT_EQ(f.outcome, s.outcome) << "trial " << i;
  EXPECT_EQ(f.mode, s.mode) << "trial " << i;
  EXPECT_EQ(f.cat, s.cat) << "trial " << i;
  EXPECT_EQ(f.storage, s.storage) << "trial " << i;
  EXPECT_EQ(f.cycles, s.cycles) << "trial " << i;
  EXPECT_EQ(f.valid_instrs, s.valid_instrs) << "trial " << i;
  EXPECT_EQ(f.inflight, s.inflight) << "trial " << i;
}

std::string TraceRow(const obs::PropagationTrace& tr, const std::string& wl,
                     std::size_t i) {
  std::ostringstream os;
  obs::WritePropTraceRow(tr, wl, i, os);
  return os.str();
}

// Every record and every propagation trace must be byte-identical between
// the two execution policies, over a population that exercises shortcut
// Matches, latent Grays, and read-forced fallbacks.
TEST(TrialFastPath, RecordsAndTracesByteIdenticalToSlowPath) {
  const FastpathRig& rig = Rig();
  TrialRunner fast(rig.golden);
  TrialPolicy slow_policy;
  slow_policy.fast_path = false;
  TrialRunner slow(rig.golden, slow_policy);
  int shortcut = 0, match_late = 0, gray_latent = 0;
  for (std::size_t i = 0; i < rig.specs.size(); ++i) {
    const TrialRunner::Result f = fast.Run(rig.specs[i], /*want_trace=*/true);
    const TrialRunner::Result s = slow.Run(rig.specs[i], /*want_trace=*/true);
    EXPECT_FALSE(s.fast);
    ExpectSameRecord(f.record, s.record, i);
    EXPECT_EQ(TraceRow(f.trace, rig.spec.workload, i),
              TraceRow(s.trace, rig.spec.workload, i))
        << "trial " << i;
    if (!f.fast) continue;
    ++shortcut;
    if (f.record.outcome == Outcome::kMicroArchMatch && f.record.cycles > 1)
      ++match_late;
    if (f.record.outcome == Outcome::kGrayArea) {
      EXPECT_EQ(f.record.cycles, rig.spec.golden.window);
      ++gray_latent;
    }
  }
  // The population must actually exercise the shortcut's verdicts, or this
  // test proves nothing.
  EXPECT_GT(shortcut, 0);
  EXPECT_GT(match_late, 0);
  EXPECT_GT(gray_latent, 0);
}

// The cutoff may only fire at *full* re-convergence. A shortcut Match at
// cycle c must agree with the simulating loop's classification cycle — a
// machine that transiently looks converged (e.g. the injected category's
// hash matches while the fault lives on elsewhere) must not cut early, and
// the tracker's write cycle must be exactly the convergence cycle.
TEST(TrialFastPath, ConvergenceCutoffFiresAtExactConvergenceCycle) {
  const FastpathRig& rig = Rig();
  TrialRunner fast(rig.golden);
  TrialPolicy slow_policy;
  slow_policy.fast_path = false;
  TrialRunner slow(rig.golden, slow_policy);
  const WordFirstAccessTracker& access = *rig.golden->fastpath.access;
  int checked = 0;
  for (const TrialSpec& ts : rig.specs) {
    const TrialRunner::Result f = fast.Run(ts);
    if (!f.fast || f.record.outcome != Outcome::kMicroArchMatch) continue;
    const InjectionSite site =
        ResolveInjectionSite(rig.golden->spec, ts, fast.core().registry());
    std::uint64_t expect_c = 1;
    for (const BitLocation& loc : site.flips) {
      const auto fa =
          access.Lookup(fast.core().registry().WordIndexOf(loc),
                        site.inj_cycle);
      ASSERT_GE(fa.cycle, 0);
      ASSERT_TRUE(fa.is_write);
      expect_c = std::max(
          expect_c, static_cast<std::uint64_t>(fa.cycle) - site.inj_cycle + 1);
    }
    EXPECT_EQ(f.record.cycles, expect_c);
    EXPECT_EQ(slow.Run(ts).record.cycles, f.record.cycles);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// Multi-bit bursts: several flipped words per trial (and possibly cancelled
// flips revisiting a bit) — the shortcut must wait for the *last* divergent
// word and still agree with the slow path byte-for-byte.
TEST(TrialFastPath, MultiFlipBurstsByteIdentical) {
  CampaignSpec spec = SmallCampaign(48);
  spec.flips = 3;
  spec.adjacent = true;
  const Program program =
      BuildWorkload(WorkloadByName(spec.workload), kCampaignIters);
  Core probe(spec.core, program);
  const std::vector<TrialSpec> specs =
      MakeTrialSpecs(spec, probe.registry().InjectableBits(spec.include_ram));
  const FastPathPlan plan = PlanFastPath(spec.golden, specs, probe.registry());
  const auto golden =
      RecordGolden(spec.core, program, spec.golden, nullptr, &plan);
  TrialRunner fast(golden);
  TrialPolicy slow_policy;
  slow_policy.fast_path = false;
  TrialRunner slow(golden, slow_policy);
  for (std::size_t i = 0; i < specs.size(); ++i)
    ExpectSameRecord(fast.Run(specs[i]).record, slow.Run(specs[i]).record, i);
}

// Non-default geometry: the fast path plans over the registry's live word
// space, which a reshaped core changes completely (different field widths,
// different word count). Fast and slow paths must stay byte-identical on a
// shape nothing in the defaults exercises.
TEST(TrialFastPath, NonDefaultGeometryByteIdentical) {
  CampaignSpec spec = SmallCampaign(48);
  spec.core.rob_entries = 16;
  spec.core.lq_entries = 8;
  spec.core.sq_entries = 8;
  spec.core.phys_regs = 48;
  const Program program =
      BuildWorkload(WorkloadByName(spec.workload), kCampaignIters);
  Core probe(spec.core, program);
  const std::vector<TrialSpec> specs =
      MakeTrialSpecs(spec, probe.registry().InjectableBits(spec.include_ram));
  const FastPathPlan plan = PlanFastPath(spec.golden, specs, probe.registry());
  const auto golden =
      RecordGolden(spec.core, program, spec.golden, nullptr, &plan);
  TrialRunner fast(golden);
  TrialPolicy slow_policy;
  slow_policy.fast_path = false;
  TrialRunner slow(golden, slow_policy);
  int shortcut = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TrialRunner::Result f = fast.Run(specs[i]);
    ExpectSameRecord(f.record, slow.Run(specs[i]).record, i);
    if (f.fast) ++shortcut;
  }
  EXPECT_GT(shortcut, 0) << "the reshaped core never took the fast path";
}

// Golden runs recorded without a fast-path plan (fuzz harness, ad-hoc
// tools) must silently take the slow path even when the policy allows fast.
TEST(TrialFastPath, NoPlanMeansSlowPath) {
  const CampaignSpec spec = SmallCampaign(8);
  const Program program =
      BuildWorkload(WorkloadByName(spec.workload), kCampaignIters);
  const auto golden = RecordGolden(spec.core, program, spec.golden);
  EXPECT_FALSE(golden->fastpath.enabled);
  Core probe(spec.core, program);
  const std::vector<TrialSpec> specs =
      MakeTrialSpecs(spec, probe.registry().InjectableBits(spec.include_ram));
  TrialRunner runner(golden);
  for (const TrialSpec& ts : specs) EXPECT_FALSE(runner.Run(ts).fast);
}

// A changed observation window must never alias cached results.
TEST(TrialFastPath, WindowIsPartOfTheCacheKey) {
  CampaignSpec a = SmallCampaign(40);
  CampaignSpec b = a;
  b.golden.window += 1;
  EXPECT_NE(a.CacheKey(), b.CacheKey());
}

// Whole-campaign A/B at jobs 1 and 4: outcome distributions, metrics JSON
// (timer-less export is byte-deterministic), propagation traces and heatmap
// exports — the knobs fastpath_ab_smoke checks plus the metrics registry.
TEST(TrialFastPath, CampaignDistributionsMetricsAndHeatmapsIdentical) {
  const CampaignSpec spec = SmallCampaign(40);
  struct Out {
    CampaignResult result;
    std::string metrics;
  };
  const auto run = [&](bool fast_path, int jobs) {
    obs::MetricsRegistry metrics;
    CampaignOptions opt;
    opt.jobs = jobs;
    opt.verbose = false;
    opt.use_cache = false;
    opt.fast_path = fast_path;
    opt.obs.collect_prop_traces = true;
    opt.obs.sinks.metrics = &metrics;
    Out out{RunCampaign(spec, opt), {}};
    std::ostringstream os;
    metrics.WriteJson(os, /*include_timers=*/false);
    out.metrics = os.str();
    return out;
  };
  const Out slow1 = run(/*fast_path=*/false, /*jobs=*/1);
  for (const Out& f : {run(true, 1), run(true, 4)}) {
    ASSERT_EQ(f.result.trials.size(), slow1.result.trials.size());
    for (std::size_t i = 0; i < f.result.trials.size(); ++i)
      ExpectSameRecord(f.result.trials[i], slow1.result.trials[i], i);
    EXPECT_EQ(f.result.ByOutcome(), slow1.result.ByOutcome());
    EXPECT_EQ(f.result.ByFailureMode(), slow1.result.ByFailureMode());
    EXPECT_EQ(f.metrics, slow1.metrics);
    ASSERT_EQ(f.result.prop_traces.size(), slow1.result.prop_traces.size());
    for (std::size_t i = 0; i < f.result.prop_traces.size(); ++i)
      EXPECT_EQ(TraceRow(f.result.prop_traces[i], spec.workload, i),
                TraceRow(slow1.result.prop_traces[i], spec.workload, i));
    std::ostringstream fh, sh;
    BuildHeatmap(f.result).WriteJson(fh, spec.workload);
    BuildHeatmap(slow1.result).WriteJson(sh, spec.workload);
    EXPECT_EQ(fh.str(), sh.str());
  }
}

// Interrupt a fast-path campaign mid-flight, then resume it with the fast
// path disabled: the journaled fast-path prefix and the slow-path suffix
// must splice into a result byte-identical to an uninterrupted slow run.
TEST(TrialFastPath, ResumeCrossesFastSlowBoundary) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tfi_fastpath_resume_test")
          .string();
  std::filesystem::remove_all(dir);
  const char* old_dir = std::getenv("TFI_CACHE_DIR");
  const std::string saved = old_dir ? old_dir : "";
  ::setenv("TFI_CACHE_DIR", dir.c_str(), 1);

  const CampaignSpec spec = SmallCampaign(30);
  CampaignOptions base;
  base.verbose = false;
  base.use_cache = false;

  CampaignOptions slow_opt = base;
  slow_opt.fast_path = false;
  const CampaignResult reference = RunCampaign(spec, slow_opt);

  CancellationToken cancel;
  CampaignOptions interrupted = base;  // fast path on (default)
  interrupted.jobs = 2;
  interrupted.checkpoint_every = 5;
  interrupted.cancel = &cancel;
  interrupted.trial_fault_hook = [&cancel](std::size_t i) {
    if (i == 12) cancel.Request();
  };
  const CampaignResult partial = RunCampaign(spec, interrupted);
  ASSERT_TRUE(partial.interrupted);
  ASSERT_FALSE(partial.trials.empty());
  ASSERT_LT(partial.trials.size(), reference.trials.size());

  CampaignOptions resume = base;
  resume.fast_path = false;  // the suffix runs on the slow path
  resume.checkpoint_every = 5;
  const CampaignResult resumed = RunCampaign(spec, resume);
  EXPECT_FALSE(resumed.interrupted);
  ASSERT_EQ(resumed.trials.size(), reference.trials.size());
  for (std::size_t i = 0; i < reference.trials.size(); ++i)
    ExpectSameRecord(resumed.trials[i], reference.trials[i], i);

  if (old_dir)
    ::setenv("TFI_CACHE_DIR", saved.c_str(), 1);
  else
    ::unsetenv("TFI_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tfsim
