// Targeted end-to-end classification tests: specific corruptions must land
// in the paper's specific failure modes.
#include <gtest/gtest.h>

#include "inject/golden.h"
#include "inject/trial.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

struct Rig {
  Program prog;
  std::shared_ptr<const GoldenRun> golden;
  std::unique_ptr<TrialRunner> runner;
  const StateRegistry& registry() const { return runner->core().registry(); }
};

const Rig& SharedRig() {
  static const Rig rig = [] {
    Rig r;
    GoldenSpec gs;
    gs.warmup = 15000;
    gs.points = 3;
    gs.spacing = 500;
    gs.window = 6000;
    r.prog = BuildWorkload(WorkloadByName("twolf"), kCampaignIters);
    r.golden = RecordGolden(CoreConfig{}, r.prog, gs);
    r.runner = std::make_unique<TrialRunner>(r.golden);
    return r;
  }();
  return rig;
}

// Collects failure modes over all bits of one field.
std::map<FailureMode, int> ModesFor(const std::string& field, int limit,
                                    std::uint8_t max_bit = 64) {
  auto& rig = const_cast<Rig&>(SharedRig());
  std::map<FailureMode, int> modes;
  Rng rng(13);
  const std::uint64_t bits = rig.registry().InjectableBits(true);
  int n = 0;
  for (std::uint64_t i = 0; i < bits && n < limit; ++i) {
    const BitLocation loc = rig.registry().LocateBit(i, true);
    if (loc.name != field || loc.bit >= max_bit) continue;
    const TrialRecord r = rig.runner->Run(
        {static_cast<int>(rng.NextBelow(3)), rng.NextBelow(150), i, true})
                              .record;
    ++modes[r.mode];
    ++n;
  }
  return modes;
}

TEST(Classification, RegfileFlipsAreRegfileMode) {
  const auto modes = ModesFor("regfile.value", 100, 16);  // live low bits
  int failures = 0;
  for (const auto& [m, n] : modes)
    if (m != FailureMode::kNoFailure) failures += n;
  ASSERT_GT(failures, 10);
  EXPECT_GT(modes.count(FailureMode::kRegfile) ? modes.at(FailureMode::kRegfile) : 0,
            failures / 2);
}

TEST(Classification, StoreBufferCorruptionIsMemMode) {
  // The store buffer drains fast, so its slots are live only in narrow
  // windows; aim injections at cycles where the golden run shows it
  // occupied. Data flips in committed-but-undrained stores corrupt memory.
  auto& rig = const_cast<Rig&>(SharedRig());
  const auto& tl = rig.golden->timeline;
  std::vector<std::uint64_t> busy_offsets;
  for (std::uint64_t o = 1; o < 200 && busy_offsets.size() < 24; ++o)
    if (!tl.sb_empty[o - 1]) busy_offsets.push_back(o);
  ASSERT_FALSE(busy_offsets.empty()) << "workload never uses the SB?";

  const std::uint64_t bits = rig.registry().InjectableBits(true);
  int failures = 0, mem = 0, trials = 0;
  for (std::uint64_t i = 0; i < bits; ++i) {
    const BitLocation loc = rig.registry().LocateBit(i, true);
    if (loc.name != "sb.data" || loc.bit >= 8) continue;
    for (std::uint64_t o : busy_offsets) {
      const TrialRecord r = rig.runner->Run({0, o, i, true}).record;
      ++trials;
      if (r.outcome == Outcome::kSdc) {
        ++failures;
        if (r.mode == FailureMode::kMem) ++mem;
      }
    }
  }
  ASSERT_GT(trials, 50);
  EXPECT_GT(failures, 0) << "a live committed store was corrupted silently";
  EXPECT_GT(mem, 0) << "memory-inconsistency mode should be represented";
}

TEST(Classification, RobDoneBitsDeadlockOrMisretire) {
  const auto modes = ModesFor("rob.done", 64);
  EXPECT_GT(modes.count(FailureMode::kLocked) ? modes.at(FailureMode::kLocked) : 0,
            0)
      << "clearing a done bit must be able to deadlock retirement";
}

TEST(Classification, InsnWordFlipsAreCtrlOrExcept) {
  const auto modes = ModesFor("rob.insn", 120, 32);
  const int ctrl = modes.count(FailureMode::kCtrl) ? modes.at(FailureMode::kCtrl) : 0;
  ASSERT_GT(ctrl, 10) << "committing a corrupted instruction word is the "
                         "paper's ctrl failure";
  // regfile-mode should be rare here: the insn word at retirement is what is
  // compared, not re-executed.
  const int regfile =
      modes.count(FailureMode::kRegfile) ? modes.at(FailureMode::kRegfile) : 0;
  EXPECT_LT(regfile, ctrl);
}

TEST(Classification, PredictedTargetFlipsAreLargelyBenign) {
  const auto modes = ModesFor("sched.pred_target", 150);
  int failures = 0;
  for (const auto& [m, n] : modes)
    if (m != FailureMode::kNoFailure) failures += n;
  // Mispredicted-target recovery handles most of these (they only cost
  // timing); a minority stray into unmapped pages (itlb).
  EXPECT_LT(failures, 25);
}

TEST(Classification, CyclesToFailureAreShortForLiveState) {
  auto& rig = const_cast<Rig&>(SharedRig());
  Rng rng(17);
  const std::uint64_t bits = rig.registry().InjectableBits(true);
  std::uint64_t sum = 0;
  int n = 0;
  for (std::uint64_t i = 0; i < bits && n < 60; ++i) {
    const BitLocation loc = rig.registry().LocateBit(i, true);
    if (loc.name != "regfile.value" || loc.bit >= 8) continue;
    const TrialRecord r =
        rig.runner->Run({0, rng.NextBelow(100), i, true}).record;
    if (r.outcome == Outcome::kSdc) {
      sum += r.cycles;
      ++n;
    }
  }
  ASSERT_GT(n, 5);
  EXPECT_LT(sum / static_cast<std::uint64_t>(n), 2000u)
      << "live register corruption should surface quickly";
}

}  // namespace
}  // namespace tfsim
