// Section 5 software-level injection tests.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "soft/soft_inject.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

Program SmallProgram() {
  return BuildWorkload(WorkloadByName("gzip"), 3, true);
}

TEST(Soft, NamesAreTotal) {
  for (int m = 0; m < kNumSoftFaultModels; ++m)
    EXPECT_STRNE(SoftFaultModelName(static_cast<SoftFaultModel>(m)), "?");
  for (int o = 0; o < kNumSoftOutcomes; ++o)
    EXPECT_STRNE(SoftOutcomeName(static_cast<SoftOutcome>(o)), "?");
}

TEST(Soft, TrialsAreDeterministic) {
  const Program prog = SmallProgram();
  const auto a = RunSoftTrial(prog, SoftFaultModel::kRegBit64, 100, 7, 1u << 24);
  const auto b = RunSoftTrial(prog, SoftFaultModel::kRegBit64, 100, 7, 1u << 24);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.control_flow_diverged, b.control_flow_diverged);
  EXPECT_EQ(a.insns_executed, b.insns_executed);
}

TEST(Soft, BranchFlipDivergesControlFlow) {
  const Program prog = SmallProgram();
  int diverged = 0, total = 0;
  for (std::uint64_t t = 0; t < 30; ++t) {
    const auto r =
        RunSoftTrial(prog, SoftFaultModel::kBranchFlip, t * 37, t, 1u << 24);
    ++total;
    // A forced wrong branch must at least transiently leave the golden path
    // unless the run dies first.
    if (r.control_flow_diverged || r.outcome == SoftOutcome::kException)
      ++diverged;
  }
  EXPECT_EQ(diverged, total);
}

TEST(Soft, EveryModelProducesOnlyValidOutcomes) {
  const Program prog = SmallProgram();
  for (int m = 0; m < kNumSoftFaultModels; ++m) {
    for (std::uint64_t t = 0; t < 10; ++t) {
      const auto r = RunSoftTrial(prog, static_cast<SoftFaultModel>(m),
                                  t * 101, t, 1u << 24);
      EXPECT_LE(static_cast<int>(r.outcome), 3);
    }
  }
}

TEST(Soft, SomeFaultsAreMaskedAndSomeAreNot) {
  const Program prog = SmallProgram();
  int ok = 0, bad = 0;
  for (std::uint64_t t = 0; t < 60; ++t) {
    const auto r =
        RunSoftTrial(prog, SoftFaultModel::kRegBit64, t * 997, t, 1u << 24);
    if (r.outcome == SoftOutcome::kStateOk) ++ok;
    if (r.outcome == SoftOutcome::kOutputBad) ++bad;
  }
  EXPECT_GT(ok, 5) << "software masking should be significant (paper: ~50%)";
  EXPECT_GT(bad, 5) << "register corruption must be able to break output";
}

TEST(Soft, CampaignAggregatesAndCaches) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tfi_soft_cache").string();
  ::setenv("TFI_CACHE_DIR", dir.c_str(), 1);
  std::filesystem::remove_all(dir);
  SoftCampaignSpec spec;
  spec.workload = "gzip";
  spec.iters = 3;
  spec.trials = 20;
  spec.model = SoftFaultModel::kNop;
  const auto fresh = RunSoftCampaign(spec, false);
  EXPECT_EQ(fresh.trials, 20u);
  std::uint64_t sum = 0;
  for (auto v : fresh.by_outcome) sum += v;
  EXPECT_EQ(sum, 20u);
  const auto cached = RunSoftCampaign(spec, false);
  EXPECT_EQ(cached.by_outcome, fresh.by_outcome);
  std::filesystem::remove_all(dir);
  ::unsetenv("TFI_CACHE_DIR");
}

}  // namespace
}  // namespace tfsim
