// Observability layer: JSON emitter golden outputs, validator, metrics
// registry determinism, per-category registry hashes, and propagation-trace
// sanity on real injection trials.
#include <gtest/gtest.h>

#include <sstream>

#include "inject/campaign.h"
#include "inject/report.h"
#include "inject/trial.h"
#include "obs/chrome_trace.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/prop_trace.h"
#include "obs/sinks.h"
#include "uarch/core.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

using obs::JsonEscape;
using obs::JsonLint;
using obs::JsonWriter;

// ---------------------------------------------------------------------------
// JSON emitter
// ---------------------------------------------------------------------------

TEST(JsonWriter, GoldenFlatObject) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject()
      .Field("s", "hi")
      .Field("n", std::uint64_t{42})
      .Field("neg", std::int64_t{-7})
      .Field("f", 0.5)
      .Field("b", true)
      .End();
  EXPECT_EQ(os.str(), R"({"s":"hi","n":42,"neg":-7,"f":0.5,"b":true})");
}

TEST(JsonWriter, GoldenNestedContainers) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.BeginArray("xs").Value(std::uint64_t{1}).Value(std::uint64_t{2}).End();
  w.BeginObject("inner").Field("k", "v").End();
  w.BeginArray("empty").End();
  w.End();
  EXPECT_EQ(os.str(), R"({"xs":[1,2],"inner":{"k":"v"},"empty":[]})");
  EXPECT_EQ(w.Depth(), 0u);
  EXPECT_TRUE(JsonLint(os.str()));
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");

  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject().Field("k\"ey", "v\nal").End();
  EXPECT_EQ(os.str(), "{\"k\\\"ey\":\"v\\nal\"}");
  EXPECT_TRUE(JsonLint(os.str()));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject().Field("inf", 1.0 / 0.0).Field("nan", 0.0 / 0.0).End();
  EXPECT_EQ(os.str(), R"({"inf":null,"nan":null})");
  EXPECT_TRUE(JsonLint(os.str()));
}

TEST(JsonLint, AcceptsValidRejectsInvalid) {
  EXPECT_TRUE(JsonLint(R"({"a":[1,2.5,-3e2,"x",true,false,null],"b":{}})"));
  EXPECT_TRUE(JsonLint("[]"));
  EXPECT_TRUE(JsonLint("  42 "));
  EXPECT_TRUE(JsonLint(R"("esc: \" \\ ÿ")"));

  std::string err;
  EXPECT_FALSE(JsonLint("{", &err));
  EXPECT_FALSE(JsonLint("{'a':1}", &err));  // single quotes
  EXPECT_FALSE(JsonLint("[1,]", &err));     // trailing comma
  EXPECT_FALSE(JsonLint("[1] [2]", &err));  // trailing garbage
  EXPECT_FALSE(JsonLint("\"unterminated", &err));
  EXPECT_FALSE(JsonLint("{\"a\":}", &err));
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CountersHistogramsAccumulate) {
  obs::MetricsRegistry m;
  m.GetCounter("c").Inc();
  m.GetCounter("c").Inc(4);
  EXPECT_EQ(m.GetCounter("c").value(), 5u);

  obs::Histogram& h = m.GetHistogram("h", 2, 4);
  for (std::uint64_t v : {0u, 1u, 2u, 7u, 100u}) h.Add(v);
  EXPECT_EQ(h.stat().Count(), 5u);
  EXPECT_EQ(h.counts()[0], 2u);  // 0,1
  EXPECT_EQ(h.counts()[1], 1u);  // 2
  EXPECT_EQ(h.counts()[3], 1u);  // 7
  EXPECT_EQ(h.counts().back(), 1u);  // 100 overflows
  EXPECT_EQ(h.stat().Max(), 100.0);
}

TEST(Metrics, HandlesAreStableAcrossLookups) {
  obs::MetricsRegistry m;
  obs::Counter* a = &m.GetCounter("x");
  for (int i = 0; i < 100; ++i) m.GetCounter("pad" + std::to_string(i));
  EXPECT_EQ(a, &m.GetCounter("x"));
}

TEST(Metrics, JsonExportIsValid) {
  obs::MetricsRegistry m;
  m.GetCounter("a.b").Inc(3);
  m.GetHistogram("h \"quoted\"", 1, 2).Add(1);
  m.GetTimer("t").Start();
  m.GetTimer("t").Stop();
  std::ostringstream os;
  m.WriteJson(os);
  std::string err;
  EXPECT_TRUE(JsonLint(os.str(), &err)) << err << "\n" << os.str();
}

// Two identical simulations must export byte-identical counter/histogram
// sections (timers are wall-clock and excluded).
TEST(Metrics, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    obs::MetricsRegistry m;
    obs::ObsSinks sinks;
    sinks.metrics = &m;
    Core core(CoreConfig{}, BuildWorkload(WorkloadByName("gzip"), 2));
    core.AttachObs(&sinks);
    for (int c = 0; c < 5000; ++c) core.Cycle();
    core.FlushObsCounters();
    std::ostringstream os;
    m.WriteJson(os, /*include_timers=*/false);
    return os.str();
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_NE(first.find("pipe.rob.occupancy"), std::string::npos);
  EXPECT_NE(first.find("pipe.cycles"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chrome trace writer
// ---------------------------------------------------------------------------

TEST(ChromeTrace, EmitsValidTraceEventJson) {
  obs::ChromeTraceWriter t;
  t.SetProcessName(obs::ChromeTraceWriter::kPidPipeline, "pipeline");
  t.CounterEvent("occ", 1, 64, {{"rob", 10.0}, {"sched", 3.0}});
  t.CompleteEvent("SDC", 2, 0, 100, 250, {{"category", "pc"}});
  t.InstantEvent("golden done", 2, 90);
  std::ostringstream os;
  t.WriteTo(os);
  std::string err;
  ASSERT_TRUE(JsonLint(os.str(), &err)) << err;
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(os.str().find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(os.str().find("\"dur\":250"), std::string::npos);
  EXPECT_EQ(t.EventCount(), 4u);
}

// ---------------------------------------------------------------------------
// Per-category registry hashes
// ---------------------------------------------------------------------------

TEST(CatHash, IncrementalMatchesRecomputationAndPartitionsHash) {
  Core core(CoreConfig{}, BuildWorkload(WorkloadByName("gzip"), 2));
  for (int c = 0; c < 2000; ++c) core.Cycle();
  const StateRegistry& reg = core.registry();
  const auto recomputed = reg.RecomputeCatHashes();
  std::uint64_t xor_all = 0;
  for (int c = 0; c < kNumStateCats; ++c) {
    EXPECT_EQ(reg.CatHash(static_cast<StateCat>(c)), recomputed[c])
        << "category " << StateCatName(static_cast<StateCat>(c));
    xor_all ^= recomputed[c];
  }
  // The per-category hashes partition the whole-registry hash.
  EXPECT_EQ(xor_all, reg.Hash());
}

TEST(CatHash, FlipTouchesExactlyItsCategory) {
  Core core(CoreConfig{}, BuildWorkload(WorkloadByName("gzip"), 2));
  for (int c = 0; c < 1000; ++c) core.Cycle();
  const auto before = core.registry().CatHashes();
  const BitLocation loc = core.registry().LocateBit(12345, true);
  core.registry().FlipBit(loc);
  const auto after = core.registry().CatHashes();
  for (int c = 0; c < kNumStateCats; ++c) {
    if (static_cast<StateCat>(c) == loc.cat)
      EXPECT_NE(before[c], after[c]);
    else
      EXPECT_EQ(before[c], after[c]);
  }
}

// ---------------------------------------------------------------------------
// Propagation traces on real trials
// ---------------------------------------------------------------------------

class PropTraceTest : public ::testing::Test {
 protected:
  static GoldenSpec SmallSpec() {
    GoldenSpec gs;
    gs.warmup = 12000;
    gs.points = 2;
    gs.spacing = 500;
    gs.window = 3000;
    return gs;
  }
};

TEST_F(PropTraceTest, TraceAgreesWithRecordAndOrdersCycles) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  const auto golden = RecordGolden(CoreConfig{}, prog, SmallSpec());
  TrialRunner runner(golden);
  Rng rng(99);
  const std::uint64_t bits = runner.core().registry().InjectableBits(true);

  int failures_seen = 0;
  for (int t = 0; t < 40; ++t) {
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(rng.NextBelow(2));
    ts.offset = rng.NextBelow(golden->spec.offset_max);
    ts.bit_index = rng.NextBelow(bits);
    const TrialRunner::Result res = runner.Run(ts, /*want_trace=*/true);
    const TrialRecord& rec = res.record;
    const obs::PropagationTrace& trace = res.trace;

    // The trace must agree with the trial record on every shared field.
    EXPECT_EQ(trace.outcome, rec.outcome);
    EXPECT_EQ(trace.mode, rec.mode);
    EXPECT_EQ(trace.cat, rec.cat) << "injected category recorded";
    EXPECT_EQ(trace.storage, rec.storage);
    EXPECT_EQ(trace.classified_cycle, rec.cycles);
    EXPECT_EQ(trace.valid_instrs, rec.valid_instrs);
    EXPECT_FALSE(trace.field.empty());

    // Divergence can never postdate classification.
    if (trace.arch_divergence_cycle >= 0) {
      EXPECT_LE(trace.arch_divergence_cycle,
                static_cast<std::int64_t>(trace.classified_cycle));
    }
    if (trace.first_spread_cycle >= 0) {
      EXPECT_LE(trace.first_spread_cycle,
                static_cast<std::int64_t>(trace.classified_cycle));
      EXPECT_NE(trace.first_spread_cat, trace.cat);
      EXPECT_TRUE(trace.Touched(trace.first_spread_cat));
    }
    // SDC/Terminated-by-exception trials diverged architecturally by
    // construction; deadlocks never did.
    if (rec.outcome == Outcome::kSdc) {
      EXPECT_GE(trace.arch_divergence_cycle, 0);
      ++failures_seen;
    }
    if (rec.mode == FailureMode::kLocked) {
      EXPECT_EQ(trace.arch_divergence_cycle, -1);
    }
  }
  // The seed above produces failing trials; if this ever regresses to zero
  // the assertions above were vacuous.
  EXPECT_GT(failures_seen, 0);
}

TEST_F(PropTraceTest, TracingDoesNotPerturbClassification) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  const auto golden = RecordGolden(CoreConfig{}, prog, SmallSpec());
  TrialRunner runner(golden);
  Rng rng(7);
  const std::uint64_t bits = runner.core().registry().InjectableBits(true);
  for (int t = 0; t < 15; ++t) {
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(rng.NextBelow(2));
    ts.offset = rng.NextBelow(golden->spec.offset_max);
    ts.bit_index = rng.NextBelow(bits);
    const TrialRecord with = runner.Run(ts, /*want_trace=*/true).record;
    const TrialRecord without = runner.Run(ts).record;
    EXPECT_EQ(with.outcome, without.outcome);
    EXPECT_EQ(with.mode, without.mode);
    EXPECT_EQ(with.cycles, without.cycles);
  }
}

TEST_F(PropTraceTest, JsonlRowsAreValidJson) {
  obs::PropagationTrace t;
  t.field = "rob.pc \"weird\"";
  t.cat = StateCat::kPc;
  t.outcome = Outcome::kSdc;
  t.mode = FailureMode::kCtrl;
  t.classified_cycle = 17;
  t.arch_divergence_cycle = 12;
  t.first_spread_cycle = 3;
  t.first_spread_cat = StateCat::kCtrl;
  t.cats_touched_mask =
      (1u << static_cast<int>(StateCat::kPc)) |
      (1u << static_cast<int>(StateCat::kCtrl));
  std::ostringstream os;
  obs::WritePropTraceRow(t, "gzip", 4, os);
  const std::string line = os.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  std::string err;
  EXPECT_TRUE(JsonLint(std::string_view(line.data(), line.size() - 1), &err))
      << err << "\n" << line;
  EXPECT_NE(line.find("\"first_spread_category\":\"ctrl\""),
            std::string::npos);
}

}  // namespace
}  // namespace tfsim
