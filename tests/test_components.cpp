// Unit tests for individual pipeline components: branch prediction, caches,
// rename, LSQ, ROB, scheduler.
#include <gtest/gtest.h>

#include "arch/memory.h"
#include "state/state_registry.h"
#include "uarch/bpred.h"
#include "uarch/dcache.h"
#include "uarch/icache.h"
#include "uarch/lsq.h"
#include "uarch/rename.h"
#include "uarch/rob.h"
#include "uarch/scheduler.h"
#include "uarch/uop.h"

namespace tfsim {
namespace {

CoreConfig Cfg() { return CoreConfig{}; }

// --- branch prediction -------------------------------------------------------

TEST(Bpred, LearnsAlwaysTakenBranch) {
  StateRegistry reg;
  Bpred bp(reg, Cfg());
  const DecodedInst d = Decode(EncodeB(Op::kBne, 1, 16));
  const std::uint64_t pc = 0x2000;
  for (int i = 0; i < 8; ++i) bp.Train(pc, d, true, pc + 4 + 64);
  const BranchPrediction p = bp.Predict(pc, d);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, pc + 4 + 64);
}

TEST(Bpred, LearnsNotTaken) {
  StateRegistry reg;
  Bpred bp(reg, Cfg());
  const DecodedInst d = Decode(EncodeB(Op::kBeq, 1, 8));
  for (int i = 0; i < 8; ++i) bp.Train(0x3000, d, false, 0x3004);
  EXPECT_FALSE(bp.Predict(0x3000, d).taken);
}

TEST(Bpred, UnconditionalBranchesAlwaysTaken) {
  StateRegistry reg;
  Bpred bp(reg, Cfg());
  const DecodedInst d = Decode(EncodeB(Op::kBr, 31, 10));
  const BranchPrediction p = bp.Predict(0x1000, d);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, 0x1000u + 4 + 40);
}

TEST(Bpred, RasPairsCallsWithReturns) {
  StateRegistry reg;
  Bpred bp(reg, Cfg());
  const DecodedInst bsr = Decode(EncodeB(Op::kBsr, 26, 100));
  const DecodedInst ret = Decode(EncodeJ(Op::kRet, 31, 26));
  bp.Predict(0x1000, bsr);  // pushes 0x1004
  bp.Predict(0x5000, bsr);  // pushes 0x5004
  EXPECT_EQ(bp.Predict(0x6000, ret).target, 0x5004u);
  EXPECT_EQ(bp.Predict(0x7000, ret).target, 0x1004u);
}

TEST(Bpred, RasPointerRecovery) {
  StateRegistry reg;
  Bpred bp(reg, Cfg());
  const DecodedInst bsr = Decode(EncodeB(Op::kBsr, 26, 100));
  const DecodedInst ret = Decode(EncodeJ(Op::kRet, 31, 26));
  bp.Predict(0x1000, bsr);
  const std::uint64_t ckpt = bp.RasPtr();
  bp.Predict(0x2000, bsr);  // wrong-path push
  bp.SetRasPtr(ckpt);       // recovery
  EXPECT_EQ(bp.Predict(0x3000, ret).target, 0x1004u);
}

TEST(Bpred, BtbLearnsIndirectTargets) {
  StateRegistry reg;
  Bpred bp(reg, Cfg());
  const DecodedInst jmp = Decode(EncodeJ(Op::kJmp, 31, 5));
  EXPECT_EQ(bp.Predict(0x4000, jmp).target, 0x4004u);  // cold: fall-through
  bp.Train(0x4000, jmp, true, 0x9000);
  EXPECT_EQ(bp.Predict(0x4000, jmp).target, 0x9000u);
}

// --- caches -------------------------------------------------------------------

TEST(ICache, MissThenFillAfterEightCycles) {
  StateRegistry reg;
  Memory mem;
  mem.Write(0x1000, 0xAABBCCDD, 4);
  ICache ic(reg, Cfg());
  std::uint32_t w = 0;
  EXPECT_FALSE(ic.Read(0x1000, mem, w));
  EXPECT_TRUE(ic.MissPending());
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(ic.Read(0x1000, mem, w));  // still missing
    ic.Tick(mem);
  }
  EXPECT_TRUE(ic.Read(0x1000, mem, w));
  EXPECT_EQ(w, 0xAABBCCDDu);
}

TEST(ICache, ReadsBothHalvesOfAQword) {
  StateRegistry reg;
  Memory mem;
  mem.Write(0x2000, 0x1111111122222222ull, 8);
  ICache ic(reg, Cfg());
  std::uint32_t w = 0;
  ic.Read(0x2000, mem, w);
  for (int i = 0; i < 9; ++i) ic.Tick(mem);
  ic.Read(0x2000, mem, w);
  EXPECT_EQ(w, 0x22222222u);
  ic.Read(0x2004, mem, w);
  EXPECT_EQ(w, 0x11111111u);
}

TEST(DCache, HitAfterFill) {
  StateRegistry reg;
  Memory mem;
  mem.Write(0x8000, 0x1234, 8);
  DCache dc(reg, Cfg());
  std::uint64_t v = 0;
  EXPECT_EQ(dc.AccessLoad(0x8000, 8, mem, 3, v), DCache::LoadResult::kMiss);
  for (int i = 0; i < 8; ++i) dc.Tick(mem);
  EXPECT_TRUE(dc.FillReady(3));
  dc.ReleaseFill(3);
  dc.Tick(mem);
  EXPECT_EQ(dc.AccessLoad(0x8000, 8, mem, 3, v), DCache::LoadResult::kHit);
  EXPECT_EQ(v, 0x1234u);
}

TEST(DCache, BankConflictForcesRetry) {
  StateRegistry reg;
  Memory mem;
  DCache dc(reg, Cfg());
  dc.Tick(mem);
  std::uint64_t v;
  // Prime the cache so both accesses would hit.
  dc.AccessLoad(0x100, 8, mem, 0, v);
  for (int i = 0; i < 9; ++i) dc.Tick(mem);
  EXPECT_EQ(dc.AccessLoad(0x100, 8, mem, 0, v), DCache::LoadResult::kHit);
  // Same bank (same addr bits [5:3]) in the same cycle: conflict.
  EXPECT_EQ(dc.AccessLoad(0x100, 8, mem, 1, v), DCache::LoadResult::kRetry);
  dc.Tick(mem);  // next cycle the bank frees up
  EXPECT_EQ(dc.AccessLoad(0x100, 8, mem, 1, v), DCache::LoadResult::kHit);
}

TEST(DCache, WriteThroughUpdatesMemoryAndLine) {
  StateRegistry reg;
  Memory mem;
  mem.Write(0x300, 0xAA, 8);
  DCache dc(reg, Cfg());
  std::uint64_t v;
  dc.AccessLoad(0x300, 8, mem, 0, v);
  for (int i = 0; i < 9; ++i) dc.Tick(mem);
  dc.WriteThrough(0x300, 0xBB, 8, mem);
  EXPECT_EQ(mem.Read(0x300, 8), 0xBBu);
  dc.Tick(mem);
  EXPECT_EQ(dc.AccessLoad(0x300, 8, mem, 0, v), DCache::LoadResult::kHit);
  EXPECT_EQ(v, 0xBBu);  // the cached copy was updated too
}

TEST(DCache, MshrsExhaust) {
  StateRegistry reg;
  Memory mem;
  DCache dc(reg, Cfg());
  dc.Tick(mem);
  std::uint64_t v;
  const CoreConfig cfg = Cfg();
  for (int i = 0; i < cfg.mshrs; ++i) {
    // distinct banks+lines to dodge bank conflicts: stride by line*banks
    dc.Tick(mem);
    EXPECT_EQ(dc.AccessLoad(0x10000 + i * 256, 8, mem, i & 15, v),
              DCache::LoadResult::kMiss) << i;
  }
  dc.Tick(mem);
  EXPECT_EQ(dc.MshrsInUse(), cfg.mshrs);
  EXPECT_EQ(dc.AccessLoad(0x90000, 8, mem, 0, v), DCache::LoadResult::kRetry);
}

// --- rename -------------------------------------------------------------------

TEST(Rename, ResetIdentityMapping) {
  StateRegistry reg;
  Rename rn(reg, Cfg());
  rn.Reset();
  for (std::uint64_t a = 0; a < kNumArchRegs; ++a)
    EXPECT_EQ(rn.LookupSpec(a).val, a);
  EXPECT_EQ(rn.SpecFreeCount(), 48u);
}

TEST(Rename, AllocateMapFreeCycle) {
  StateRegistry reg;
  Rename rn(reg, Cfg());
  rn.Reset();
  const RPtr p = rn.PopFree();
  EXPECT_EQ(p.val, 32u);  // first free physical register
  const RPtr old = rn.RenameDst(5, p);
  EXPECT_EQ(old.val, 5u);
  EXPECT_EQ(rn.LookupSpec(5).val, 32u);
  rn.PushFree(old);
  EXPECT_EQ(rn.SpecFreeCount(), 48u);
}

TEST(Rename, WalkBackUndo) {
  StateRegistry reg;
  Rename rn(reg, Cfg());
  rn.Reset();
  const RPtr p1 = rn.PopFree();
  const RPtr o1 = rn.RenameDst(3, p1);
  const RPtr p2 = rn.PopFree();
  const RPtr o2 = rn.RenameDst(3, p2);
  // Undo youngest-first.
  rn.UndoRename(3, o2);
  rn.UnpopFree(p2);
  rn.UndoRename(3, o1);
  rn.UnpopFree(p1);
  EXPECT_EQ(rn.LookupSpec(3).val, 3u);
  EXPECT_EQ(rn.SpecFreeCount(), 48u);
  EXPECT_EQ(rn.PopFree().val, 32u);  // order restored
}

TEST(Rename, PopOnEmptyIsDefined) {
  StateRegistry reg;
  Rename rn(reg, Cfg());
  rn.Reset();
  for (int i = 0; i < 48; ++i) rn.PopFree();
  EXPECT_EQ(rn.SpecFreeCount(), 0u);
  EXPECT_EQ(rn.PopFree().val, 0u);  // defined under corruption
}

TEST(Rename, FlushCopiesArchState) {
  StateRegistry reg;
  Rename rn(reg, Cfg());
  rn.Reset();
  const RPtr p = rn.PopFree();
  rn.RenameDst(7, p);
  rn.CopyArchToSpec();
  EXPECT_EQ(rn.LookupSpec(7).val, 7u);  // speculative rename rolled back
  EXPECT_EQ(rn.SpecFreeCount(), 48u);
}

TEST(Rename, EccTravelsAndRepairs) {
  CoreConfig cfg;
  cfg.protect.regptr_ecc = true;
  StateRegistry reg;
  Rename rn(reg, cfg);
  rn.Reset();
  const RPtr p = rn.LookupSpec(9);
  EXPECT_EQ(p.ecc, EncodeRegptrEcc(9));
  // Corrupt a pointer bit directly, then read through the checker.
  const RPtr corrupted{p.val ^ 0x4, p.ecc};
  const RPtr fixed = CheckPtr(corrupted, true);
  EXPECT_EQ(fixed.val, 9u);
}

// --- LSQ ----------------------------------------------------------------------

TEST(Lsq, RingAllocationOrder) {
  StateRegistry reg;
  Lsq lsq(reg, Cfg());
  const std::uint64_t a = lsq.AllocLq();
  const std::uint64_t b = lsq.AllocLq();
  EXPECT_EQ(b, (a + 1) % lsq.lq_entries());
  EXPECT_EQ(lsq.LqAge(a), 0u);
  EXPECT_EQ(lsq.LqAge(b), 1u);
  EXPECT_EQ(lsq.PopLqTail(), b);  // squash removes the youngest
  lsq.PopLqHead();                // retire removes the oldest
  EXPECT_EQ(lsq.lq_count.Get(0), 0u);
}

TEST(Lsq, StoreBufferFifo) {
  StateRegistry reg;
  Lsq lsq(reg, Cfg());
  lsq.SbPush(0x10, 1, EncodeSizeCode(8));
  lsq.SbPush(0x20, 2, EncodeSizeCode(4));
  std::uint64_t addr, data;
  int size;
  ASSERT_TRUE(lsq.SbPop(addr, data, size));
  EXPECT_EQ(addr, 0x10u);
  EXPECT_EQ(size, 8);
  ASSERT_TRUE(lsq.SbPop(addr, data, size));
  EXPECT_EQ(data, 2u);
  EXPECT_EQ(size, 4);
  EXPECT_FALSE(lsq.SbPop(addr, data, size));
}

TEST(Lsq, StoreBufferSurvivesQueueFlush) {
  StateRegistry reg;
  Lsq lsq(reg, Cfg());
  lsq.AllocLq();
  lsq.AllocSq();
  lsq.SbPush(0x30, 3, EncodeSizeCode(1));
  lsq.ClearQueues();
  EXPECT_EQ(lsq.lq_count.Get(0), 0u);
  EXPECT_EQ(lsq.sq_count.Get(0), 0u);
  EXPECT_FALSE(lsq.SbEmpty());  // committed stores are not flushable
}

TEST(Lsq, SizeCodesAreTotal) {
  EXPECT_EQ(DecodeSizeCode(EncodeSizeCode(1)), 1);
  EXPECT_EQ(DecodeSizeCode(EncodeSizeCode(4)), 4);
  EXPECT_EQ(DecodeSizeCode(EncodeSizeCode(8)), 8);
  EXPECT_EQ(DecodeSizeCode(3), 8);  // corrupted code decodes to something
}

// --- ROB ----------------------------------------------------------------------

TEST(Rob, CircularAllocationAndAges) {
  StateRegistry reg;
  Rob rob(reg, Cfg());
  const std::uint64_t a = rob.Allocate();
  const std::uint64_t b = rob.Allocate();
  EXPECT_EQ(rob.Count(), 2u);
  EXPECT_EQ(rob.Head(), a);
  EXPECT_TRUE(rob.Younger(b, a));
  EXPECT_FALSE(rob.Younger(a, b));
  EXPECT_TRUE(rob.Contains(a));
  rob.PopHead();
  EXPECT_FALSE(rob.Contains(a));
  EXPECT_EQ(rob.PopTail(), b);
  EXPECT_TRUE(rob.Empty());
}

TEST(Rob, FullAfterCapacityAllocations) {
  StateRegistry reg;
  Rob rob(reg, Cfg());
  for (int i = 0; i < 64; ++i) rob.Allocate();
  EXPECT_TRUE(rob.Full());
}

TEST(Rob, WrapAroundAgeOrder) {
  StateRegistry reg;
  Rob rob(reg, Cfg());
  for (int i = 0; i < 60; ++i) {
    rob.Allocate();
    rob.PopHead();
  }
  const std::uint64_t old_tag = rob.Allocate();  // near the wrap point
  for (int i = 0; i < 10; ++i) rob.Allocate();
  const std::uint64_t young = rob.Allocate();
  EXPECT_TRUE(rob.Younger(young, old_tag));
}

// --- scheduler ------------------------------------------------------------------

TEST(Scheduler, RoundRobinAllocation) {
  StateRegistry reg;
  Scheduler s(reg, Cfg());
  const auto a = s.FreeEntry();
  ASSERT_TRUE(a);
  s.valid.Set(*a, 1);
  s.NoteAllocated(*a);
  const auto b = s.FreeEntry();
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, (*a + 1) % s.entries());
}

TEST(Scheduler, WakeupSetsMatchingSources) {
  StateRegistry reg;
  Scheduler s(reg, Cfg());
  s.valid.Set(0, 1);
  s.state.Set(0, Scheduler::kWaiting);
  s.src1p.Set(0, 40);
  s.src2p.Set(0, 41);
  s.src2_rdy.Set(0, 1);
  EXPECT_FALSE(s.ReadyToIssue(0));
  s.Wakeup(40);
  EXPECT_TRUE(s.ReadyToIssue(0));
}

TEST(Scheduler, KillWakeupRevertsIssuedConsumers) {
  StateRegistry reg;
  Scheduler s(reg, Cfg());
  s.valid.Set(3, 1);
  s.state.Set(3, Scheduler::kIssued);
  s.src1p.Set(3, 50);
  s.src1_rdy.Set(3, 1);
  s.src2_rdy.Set(3, 1);
  s.KillWakeup(50, /*loader_entry=*/7);
  EXPECT_EQ(s.state.Get(3), Scheduler::kWaiting);
  EXPECT_FALSE(s.src1_rdy.GetBit(3));
}

TEST(Scheduler, WaitStoreGatesIssue) {
  StateRegistry reg;
  Scheduler s(reg, Cfg());
  s.valid.Set(1, 1);
  s.state.Set(1, Scheduler::kWaiting);
  s.src1_rdy.Set(1, 1);
  s.src2_rdy.Set(1, 1);
  s.wait_store.Set(1, 1);
  s.wait_tag.Set(1, 9);
  EXPECT_FALSE(s.ReadyToIssue(1));
  s.StoreExecuted(9);
  EXPECT_TRUE(s.ReadyToIssue(1));
}

TEST(Scheduler, FullWhenAllValid) {
  StateRegistry reg;
  Scheduler s(reg, Cfg());
  for (std::uint64_t i = 0; i < s.entries(); ++i) s.valid.Set(i, 1);
  EXPECT_FALSE(s.FreeEntry().has_value());
  EXPECT_EQ(s.Occupancy(), 32);
}

}  // namespace
}  // namespace tfsim
