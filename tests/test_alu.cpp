#include <gtest/gtest.h>

#include "isa/isa.h"

namespace tfsim {
namespace {

AluResult Exec(Op op, std::uint64_t a, std::uint64_t b) {
  DecodedInst d;
  d.op = op;
  d.cls = InsnClass::kAlu;
  return ExecuteAlu(d, a, b);
}

TEST(Alu, Arithmetic) {
  EXPECT_EQ(Exec(Op::kAddq, 7, 5).value, 12u);
  EXPECT_EQ(Exec(Op::kSubq, 7, 5).value, 2u);
  EXPECT_EQ(Exec(Op::kMulq, 7, 5).value, 35u);
  EXPECT_EQ(Exec(Op::kAddq, ~0ULL, 1).value, 0u);  // wraps
}

TEST(Alu, Logic) {
  EXPECT_EQ(Exec(Op::kAndq, 0b1100, 0b1010).value, 0b1000u);
  EXPECT_EQ(Exec(Op::kBisq, 0b1100, 0b1010).value, 0b1110u);
  EXPECT_EQ(Exec(Op::kXorq, 0b1100, 0b1010).value, 0b0110u);
  EXPECT_EQ(Exec(Op::kBicq, 0b1100, 0b1010).value, 0b0100u);
}

TEST(Alu, ShiftsMaskTheAmount) {
  EXPECT_EQ(Exec(Op::kSllq, 1, 4).value, 16u);
  EXPECT_EQ(Exec(Op::kSllq, 1, 64).value, 1u);   // amount & 63
  EXPECT_EQ(Exec(Op::kSrlq, 1ULL << 63, 63).value, 1u);
  EXPECT_EQ(Exec(Op::kSraq, static_cast<std::uint64_t>(-8), 2).value,
            static_cast<std::uint64_t>(-2));
}

TEST(Alu, Compares) {
  EXPECT_EQ(Exec(Op::kCmpeq, 5, 5).value, 1u);
  EXPECT_EQ(Exec(Op::kCmpeq, 5, 6).value, 0u);
  EXPECT_EQ(Exec(Op::kCmplt, static_cast<std::uint64_t>(-1), 0).value, 1u);
  EXPECT_EQ(Exec(Op::kCmpult, static_cast<std::uint64_t>(-1), 0).value, 0u);
  EXPECT_EQ(Exec(Op::kCmple, 5, 5).value, 1u);
  EXPECT_EQ(Exec(Op::kCmpule, 6, 5).value, 0u);
}

TEST(Alu, LongwordOpsSignExtend) {
  EXPECT_EQ(Exec(Op::kAddl, 0x7FFFFFFF, 1).value, 0xFFFFFFFF80000000ull);
  EXPECT_EQ(Exec(Op::kSubl, 0, 1).value, ~0ULL);
  EXPECT_EQ(Exec(Op::kMull, 0x10000, 0x10000).value, 0u);
}

TEST(Alu, SignExtensionOps) {
  EXPECT_EQ(Exec(Op::kSextb, 0, 0x80).value, 0xFFFFFFFFFFFFFF80ull);
  EXPECT_EQ(Exec(Op::kSextb, 0, 0x7F).value, 0x7Full);
  EXPECT_EQ(Exec(Op::kSextl, 0, 0x80000000ull).value, 0xFFFFFFFF80000000ull);
}

TEST(Alu, DivideAndRemainder) {
  EXPECT_EQ(Exec(Op::kDivq, 17, 5).value, 3u);
  EXPECT_EQ(Exec(Op::kRemq, 17, 5).value, 2u);
  EXPECT_EQ(Exec(Op::kDivq, static_cast<std::uint64_t>(-17), 5).value,
            static_cast<std::uint64_t>(-3));
}

TEST(Alu, DivideByZeroTraps) {
  EXPECT_EQ(Exec(Op::kDivq, 1, 0).exc, Exception::kDivZero);
  EXPECT_EQ(Exec(Op::kRemq, 1, 0).exc, Exception::kDivZero);
}

TEST(Alu, DivideOverflowTraps) {
  EXPECT_EQ(Exec(Op::kDivq, 1ULL << 63, static_cast<std::uint64_t>(-1)).exc,
            Exception::kOverflow);
}

TEST(Alu, TrappingAddSub) {
  EXPECT_EQ(Exec(Op::kAddv, 1, 2).value, 3u);
  EXPECT_EQ(Exec(Op::kAddv, (1ULL << 63) - 1, 1).exc, Exception::kOverflow);
  EXPECT_EQ(Exec(Op::kSubv, 5, 3).value, 2u);
  EXPECT_EQ(Exec(Op::kSubv, 1ULL << 63, 1).exc, Exception::kOverflow);
}

TEST(Alu, Umulh) {
  EXPECT_EQ(Exec(Op::kUmulh, 1ULL << 32, 1ULL << 32).value, 1u);
  EXPECT_EQ(Exec(Op::kUmulh, 2, 3).value, 0u);
}

TEST(Alu, LdaComputesAddresses) {
  EXPECT_EQ(Exec(Op::kLda, 100, 28).value, 128u);
  EXPECT_EQ(Exec(Op::kLdah, 1, 2).value, 1u + (2ull << 16));
}

TEST(Alu, NonAluOpcodeIsIllegal) {
  EXPECT_EQ(Exec(Op::kLdq, 1, 2).exc, Exception::kIllegalOpcode);
  EXPECT_EQ(Exec(Op::kSyscall, 0, 0).exc, Exception::kIllegalOpcode);
}

TEST(BranchTaken, AllConditions) {
  EXPECT_TRUE(BranchTaken(Op::kBr, 0));
  EXPECT_TRUE(BranchTaken(Op::kBsr, 0));
  EXPECT_TRUE(BranchTaken(Op::kBeq, 0));
  EXPECT_FALSE(BranchTaken(Op::kBeq, 1));
  EXPECT_TRUE(BranchTaken(Op::kBne, 1));
  EXPECT_TRUE(BranchTaken(Op::kBlt, static_cast<std::uint64_t>(-1)));
  EXPECT_FALSE(BranchTaken(Op::kBlt, 0));
  EXPECT_TRUE(BranchTaken(Op::kBle, 0));
  EXPECT_TRUE(BranchTaken(Op::kBgt, 1));
  EXPECT_FALSE(BranchTaken(Op::kBgt, 0));
  EXPECT_TRUE(BranchTaken(Op::kBge, 0));
  EXPECT_FALSE(BranchTaken(Op::kAddq, 1));  // non-branch: never taken
}

TEST(ComplexLatency, WithinPaperRange) {
  // Figure 2: complex ALU takes 2-5 cycles.
  for (int op = 0; op < 64; ++op) {
    const int lat = ComplexLatency(static_cast<Op>(op));
    EXPECT_GE(lat, 2);
    EXPECT_LE(lat, 5);
  }
  EXPECT_EQ(ComplexLatency(Op::kDivq), 5);
  EXPECT_EQ(ComplexLatency(Op::kMulq), 3);
}

}  // namespace
}  // namespace tfsim
