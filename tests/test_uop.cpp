// Packed in-pipeline representation tests: control words, PC compression,
// port routing, parity.
#include <gtest/gtest.h>

#include "uarch/uop.h"
#include "util/rng.h"

namespace tfsim {
namespace {

TEST(Uop, PcCompressionRoundTripsAlignedAddresses) {
  for (std::uint64_t pc : {0x1000ull, 0x40000ull, 0xFFFFFCull, 0x4ull})
    EXPECT_EQ(PcLoad(PcStore(pc)), pc);
}

TEST(Uop, PcStoreDropsTheAlwaysZeroBits) {
  EXPECT_EQ(PcStore(0x1000), 0x400u);
  // The two low bits are architecturally zero and not stored (Table 1's
  // 62-bit PC fields).
  EXPECT_EQ(PcLoad(PcStore(0x1003)), 0x1000u);
}

TEST(Uop, CtrlWordRoundTripsEveryDecodedInstruction) {
  Rng rng(8);
  for (int i = 0; i < 20000; ++i) {
    const DecodedInst d = Decode(static_cast<std::uint32_t>(rng.Next()));
    const DecodedInst u = UnpackCtrl(PackCtrl(d));
    EXPECT_EQ(u.op, d.op);
    EXPECT_EQ(u.cls, d.cls);
    EXPECT_EQ(u.imm, d.imm);
  }
}

TEST(Uop, CtrlWordFitsDeclaredWidth) {
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const DecodedInst d = Decode(static_cast<std::uint32_t>(rng.Next()));
    EXPECT_EQ(PackCtrl(d) >> kCtrlBits, 0u);
  }
}

TEST(Uop, CorruptedCtrlWordsUnpackToDefinedInstructions) {
  Rng rng(10);
  for (int i = 0; i < 20000; ++i) {
    const DecodedInst d = UnpackCtrl(rng.Next() & ((1ULL << kCtrlBits) - 1));
    EXPECT_LE(static_cast<int>(d.cls), static_cast<int>(InsnClass::kSyscall));
    EXPECT_TRUE(d.mem_size == 1 || d.mem_size == 4 || d.mem_size == 8);
  }
}

TEST(Uop, PortRoutingMatchesFigure2) {
  EXPECT_EQ(PortFor(InsnClass::kAlu), PortClass::kSimple);
  EXPECT_EQ(PortFor(InsnClass::kAluComplex), PortClass::kComplex);
  EXPECT_EQ(PortFor(InsnClass::kCondBranch), PortClass::kBranch);
  EXPECT_EQ(PortFor(InsnClass::kBr), PortClass::kBranch);
  EXPECT_EQ(PortFor(InsnClass::kBsr), PortClass::kBranch);
  EXPECT_EQ(PortFor(InsnClass::kJmp), PortClass::kBranch);
  EXPECT_EQ(PortFor(InsnClass::kJsr), PortClass::kBranch);
  EXPECT_EQ(PortFor(InsnClass::kRet), PortClass::kBranch);
  EXPECT_EQ(PortFor(InsnClass::kLoad), PortClass::kAgu);
  EXPECT_EQ(PortFor(InsnClass::kStore), PortClass::kAgu);
  // Corrupted classes route somewhere defined.
  EXPECT_EQ(PortFor(InsnClass::kIllegal), PortClass::kSimple);
  EXPECT_EQ(PortFor(InsnClass::kSyscall), PortClass::kSimple);
}

TEST(Uop, ParityDetectsEverySingleBitFlip) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto w = static_cast<std::uint32_t>(rng.Next());
    const std::uint64_t p = InsnParity(w);
    for (int b = 0; b < 32; ++b)
      EXPECT_NE(InsnParity(w ^ (1u << b)), p);
  }
}

TEST(Uop, ParityMissesDoubleFlips) {
  // Single parity is exactly a single-bit detector — documents the coverage
  // boundary of the Section 4 mechanism.
  EXPECT_EQ(InsnParity(0x0), InsnParity(0x3));
}

}  // namespace
}  // namespace tfsim
