// Behavioural tests of the Section 4 protection mechanisms on the live
// pipeline: each mechanism must actually absorb the fault class it targets.
#include <gtest/gtest.h>

#include "inject/golden.h"
#include "inject/trial.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

GoldenSpec SmallSpec() {
  GoldenSpec gs;
  gs.warmup = 12000;
  gs.points = 2;
  gs.spacing = 400;
  gs.window = 5000;
  gs.slack = 1000;
  return gs;
}

struct Rig {
  Program prog;
  std::shared_ptr<const GoldenRun> golden;
  std::unique_ptr<TrialRunner> runner;
  const StateRegistry& registry() const { return runner->core().registry(); }
};

Rig MakeRig(const ProtectionConfig& p, const char* workload = "gzip") {
  Rig rig;
  CoreConfig cfg;
  cfg.protect = p;
  rig.prog = BuildWorkload(WorkloadByName(workload), kCampaignIters);
  rig.golden = RecordGolden(cfg, rig.prog, SmallSpec());
  rig.runner = std::make_unique<TrialRunner>(rig.golden);
  return rig;
}

// Runs trials targeting one field; returns (failed, total).
std::pair<int, int> InjectField(Rig& rig, const std::string& field,
                                int max_trials, std::uint8_t max_bit = 64) {
  int failed = 0, total = 0;
  const std::uint64_t bits = rig.registry().InjectableBits(true);
  Rng rng(7);
  for (std::uint64_t i = 0; i < bits && total < max_trials; ++i) {
    const BitLocation loc = rig.registry().LocateBit(i, true);
    if (loc.name != field || loc.bit >= max_bit) continue;
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(rng.NextBelow(2));
    ts.offset = rng.NextBelow(150);
    ts.bit_index = i;
    const TrialRecord r = rig.runner->Run(ts).record;
    ++total;
    if (r.outcome == Outcome::kSdc || r.outcome == Outcome::kTerminated)
      ++failed;
  }
  return {failed, total};
}

TEST(Protection, RegfileEccAbsorbsRegisterFileFlips) {
  Rig bare = MakeRig(ProtectionConfig::None());
  Rig ecc = MakeRig({.regfile_ecc = true});
  const auto [fail_bare, n_bare] = InjectField(bare, "regfile.value", 120);
  const auto [fail_ecc, n_ecc] = InjectField(ecc, "regfile.value", 120);
  ASSERT_GT(n_bare, 60);
  ASSERT_GT(n_ecc, 60);
  EXPECT_GT(fail_bare, n_bare / 5)
      << "unprotected register file should be quite vulnerable";
  // The one-cycle generation window keeps coverage below 100%, but failures
  // must drop dramatically (paper Figure 9).
  EXPECT_LT(fail_ecc, fail_bare / 4)
      << fail_ecc << "/" << n_ecc << " vs " << fail_bare << "/" << n_bare;
}

TEST(Protection, RegptrEccAbsorbsAliasTableFlips) {
  Rig bare = MakeRig(ProtectionConfig::None());
  Rig ecc = MakeRig({.regptr_ecc = true});
  int fail_bare = 0, n_bare = 0, fail_ecc = 0, n_ecc = 0;
  for (const char* f : {"rename.specrat", "rename.archrat"}) {
    auto [fb, nb] = InjectField(bare, f, 60);
    auto [fe, ne] = InjectField(ecc, f, 60);
    fail_bare += fb; n_bare += nb;
    fail_ecc += fe; n_ecc += ne;
  }
  ASSERT_GT(n_bare, 40);
  EXPECT_GT(fail_bare, 5);
  EXPECT_LT(fail_ecc, std::max(1, fail_bare / 5))
      << fail_ecc << "/" << n_ecc << " vs " << fail_bare << "/" << n_bare;
}

TEST(Protection, InsnParityCatchesInstructionWordFlips) {
  Rig bare = MakeRig(ProtectionConfig::None());
  Rig par = MakeRig({.insn_parity = true});
  int fail_bare = 0, n_bare = 0, fail_par = 0, n_par = 0;
  for (const char* f : {"rob.insn", "sched.insn", "fq.insn"}) {
    auto [fb, nb] = InjectField(bare, f, 60, 32);
    auto [fp, np] = InjectField(par, f, 60, 32);
    fail_bare += fb; n_bare += nb;
    fail_par += fp; n_par += np;
  }
  ASSERT_GT(n_bare, 100);
  EXPECT_GT(fail_bare, 20) << "instruction words are highly vulnerable";
  EXPECT_LT(fail_par, fail_bare / 4)
      << fail_par << "/" << n_par << " vs " << fail_bare << "/" << n_bare;
}

TEST(Protection, ParityBitItselfIsBenign) {
  // Section 4.3: the introduced overhead is naturally redundant — a flipped
  // parity bit forces a spurious flush but never corrupts execution.
  Rig par = MakeRig({.insn_parity = true});
  int failed = 0, total = 0;
  const std::uint64_t bits = par.registry().InjectableBits(true);
  for (std::uint64_t i = 0; i < bits && total < 100; ++i) {
    const BitLocation loc = par.registry().LocateBit(i, true);
    if (loc.cat != StateCat::kParity) continue;
    const TrialRecord r = par.runner->Run({0, 25, i, true}).record;
    ++total;
    if (r.outcome == Outcome::kSdc || r.outcome == Outcome::kTerminated)
      ++failed;
  }
  ASSERT_GT(total, 50);
  EXPECT_EQ(failed, 0);
}

TEST(Protection, TimeoutCounterClearsSchedulerDeadlocks) {
  // A flipped wait_store bit with a stale tag parks an instruction forever;
  // the timeout counter's forced flush must recover it.
  Rig bare = MakeRig(ProtectionConfig::None(), "gcc");
  Rig to = MakeRig({.timeout_counter = true}, "gcc");
  auto count_locked = [](Rig& rig) {
    int locked = 0, total = 0;
    const std::uint64_t bits = rig.registry().InjectableBits(true);
    for (std::uint64_t i = 0; i < bits && total < 200; ++i) {
      const BitLocation loc = rig.registry().LocateBit(i, true);
      if (loc.name != "rob.done" && loc.name != "lq.state" &&
          loc.name != "sched.wait_store")
        continue;
      const TrialRecord r = rig.runner->Run({1, 60, i, true}).record;
      ++total;
      if (r.mode == FailureMode::kLocked) ++locked;
    }
    return std::pair{locked, total};
  };
  const auto [locked_bare, n_bare] = count_locked(bare);
  const auto [locked_to, n_to] = count_locked(to);
  ASSERT_GT(n_bare, 50);
  EXPECT_GT(locked_bare, 2) << "these fields should be able to deadlock";
  EXPECT_LT(locked_to, std::max(1, locked_bare / 2))
      << locked_to << "/" << n_to << " vs " << locked_bare << "/" << n_bare;
}

TEST(Protection, EccStateIsMostlySelfRedundant) {
  // Faults in the ECC check bits themselves should rarely fail: the next
  // checked read repairs the code (Section 4.3's redundancy argument).
  Rig ecc = MakeRig(ProtectionConfig::All());
  int failed = 0, total = 0;
  const std::uint64_t bits = ecc.registry().InjectableBits(true);
  for (std::uint64_t i = 0; i < bits && total < 150; ++i) {
    const BitLocation loc = ecc.registry().LocateBit(i, true);
    if (loc.cat != StateCat::kEcc) continue;
    const TrialRecord r = ecc.runner->Run({0, 40, i, true}).record;
    ++total;
    if (r.outcome == Outcome::kSdc || r.outcome == Outcome::kTerminated)
      ++failed;
  }
  ASSERT_GT(total, 100);
  EXPECT_LT(failed, total / 10);
}

}  // namespace
}  // namespace tfsim
