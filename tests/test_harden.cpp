// The software-hardening transform and its static verifier: hardened
// programs must verify clean and execute architecturally identically to the
// originals; every seeded corruption class must surface as the matching
// VerifyHardened finding; and hardened workloads must slot into the campaign
// machinery as first-class deterministic workloads with their own cache keys.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "arch/functional_sim.h"
#include "inject/campaign.h"
#include "isa/isa.h"
#include "soft/harden.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

using analyze::AsmFinding;
using analyze::AsmFindingKind;

constexpr HardenMode kAllModes[] = {HardenMode::kCfc, HardenMode::kDup,
                                    HardenMode::kFull};

struct ArchResult {
  std::uint64_t exit_code = 0;
  std::vector<std::uint8_t> output;
  bool exited = false;
  bool operator==(const ArchResult&) const = default;
};

ArchResult RunFunctional(const Program& p) {
  FunctionalSim sim(p);
  sim.Run(50'000'000);
  return {sim.state().exit_code, sim.state().output, sim.state().exited};
}

std::uint32_t TextWord(const Program& p, std::size_t idx) {
  std::uint32_t w;
  std::memcpy(&w, p.chunks.at(0).bytes.data() + 4 * idx, 4);
  return w;
}

void SetTextWord(Program& p, std::size_t idx, std::uint32_t w) {
  std::memcpy(p.chunks.at(0).bytes.data() + 4 * idx, &w, 4);
}

bool HasKind(const std::vector<AsmFinding>& fs, AsmFindingKind k) {
  return std::any_of(fs.begin(), fs.end(),
                     [k](const AsmFinding& f) { return f.kind == k; });
}

// Corrupts the first word of the first component matching (kind, what) with
// a same-length replacement, so the word-diff stays aligned and the finding
// is attributable to exactly that component class.
Program CorruptComponent(const HardenedProgram& hp, AsmFindingKind kind,
                         const char* what = nullptr) {
  for (const auto& c : hp.components) {
    if (c.kind != kind || c.num_words == 0) continue;
    if (what && std::string(c.what) != what) continue;
    Program p = hp.program;
    const std::uint32_t old = TextWord(p, c.first_word);
    std::uint32_t repl = EncodeI(Op::kAddqi, 0, 1, 42);
    if (repl == old) repl = EncodeI(Op::kAddqi, 0, 1, 43);
    SetTextWord(p, c.first_word, repl);
    return p;
  }
  ADD_FAILURE() << "no component of the requested kind";
  return hp.program;
}

TEST(Harden, GeneratedVariantsVerifyCleanAcrossTheSuite) {
  for (const auto& w : AllWorkloads()) {
    const Program orig = BuildWorkload(w, kCampaignIters);
    for (HardenMode m : kAllModes) {
      const HardenedProgram hp = Harden(orig, m);
      const auto fs = VerifyHardened(orig, hp.program, m, w.name);
      EXPECT_TRUE(fs.empty()) << w.name << "+" << HardenModeName(m) << ": "
                              << (fs.empty() ? "" : fs[0].Format());
    }
  }
}

TEST(Harden, HardenedExecutionIsArchitecturallyIdentical) {
  for (const auto& w : AllWorkloads()) {
    const Program orig =
        BuildWorkload(w, 3, /*emit_each_iteration=*/true);
    const ArchResult ref = RunFunctional(orig);
    ASSERT_TRUE(ref.exited) << w.name;
    for (HardenMode m : kAllModes) {
      const ArchResult got = RunFunctional(Harden(orig, m).program);
      EXPECT_EQ(got, ref) << w.name << "+" << HardenModeName(m);
    }
  }
}

TEST(Harden, HardenedProgramRunsOnThePipeline) {
  // The hardened image is an ordinary program: the out-of-order core must
  // execute it to the same architectural output the functional sim produces.
  const Program orig =
      BuildWorkload(WorkloadByName("gzip"), 2, /*emit_each_iteration=*/true);
  const Program hard = Harden(orig, HardenMode::kFull).program;
  const ArchResult ref = RunFunctional(hard);
  ASSERT_TRUE(ref.exited);

  Core core(CoreConfig{}, hard);
  for (int c = 0; c < 2'000'000 && !core.exited(); ++c) {
    core.Cycle();
    ASSERT_EQ(core.halted_exception(), Exception::kNone);
  }
  ASSERT_TRUE(core.exited());
  EXPECT_EQ(core.output(), ref.output);
}

TEST(Harden, DetectsFaultsAtRuntime) {
  // A bit flip in a duplicated value between its shadow store and its guard
  // must fail-stop: the guard loads the shadow, compares, and branches to
  // the illegal-opcode fault block instead of silently corrupting output.
  const Program orig =
      BuildWorkload(WorkloadByName("mcf"), 2, /*emit_each_iteration=*/true);
  const HardenedProgram hp = Harden(orig, HardenMode::kDup);
  FunctionalSim sim(hp.program);
  sim.Run(2'000);  // mid-execution, past the prologue
  ASSERT_TRUE(sim.Running());
  // Corrupt every non-reserved live register the next store will guard;
  // flipping a low bit of a value register models the paper's SDC path.
  bool detected = false;
  for (int r = 1; r <= 8 && !detected; ++r) {
    FunctionalSim trial(hp.program);
    trial.Run(2'000);
    trial.state().regs[r] ^= 1;
    trial.Run(50'000'000);
    detected = trial.pending_exception() == Exception::kIllegalOpcode;
  }
  EXPECT_TRUE(detected);
}

TEST(Harden, VerifierRejectsSeededCorruptions) {
  const Program orig = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  const HardenedProgram hp = Harden(orig, HardenMode::kFull);

  const struct {
    AsmFindingKind kind;
    const char* what;  // nullptr = any component of the kind
  } cases[] = {
      {AsmFindingKind::kUnduplicatedValue, "duplication"},
      {AsmFindingKind::kUnguardedStore, nullptr},
      {AsmFindingKind::kUnguardedBranch, nullptr},
      {AsmFindingKind::kSignatureEdge, nullptr},
      {AsmFindingKind::kHardenStructure, "master"},
  };
  for (const auto& c : cases) {
    const Program bad = CorruptComponent(hp, c.kind, c.what);
    const auto fs = VerifyHardened(orig, bad, HardenMode::kFull, "gzip");
    EXPECT_TRUE(HasKind(fs, c.kind))
        << "corrupting a " << static_cast<int>(c.kind)
        << " component produced no such finding";
  }
}

TEST(Harden, VerifierRejectsDefangedFaultBlock) {
  const Program orig = BuildWorkload(WorkloadByName("mcf"), kCampaignIters);
  const HardenedProgram hp = Harden(orig, HardenMode::kFull);
  Program bad = hp.program;
  // Replace the illegal-opcode trap with a harmless nop-like instruction:
  // detection would silently continue instead of fail-stopping.
  SetTextWord(bad, hp.fault_word, EncodeI(Op::kAddqi, 31, 31, 0));
  const auto fs = VerifyHardened(orig, bad, HardenMode::kFull, "mcf");
  EXPECT_TRUE(HasKind(fs, AsmFindingKind::kHardenStructure));
}

TEST(Harden, VerifierRejectsShadowClobberingMaster) {
  const Program orig = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  const HardenedProgram hp = Harden(orig, HardenMode::kFull);
  // Find a master component and make it write the shadow base register.
  for (const auto& c : hp.components) {
    if (std::string(c.what) != "master" || c.num_words == 0) continue;
    Program bad = hp.program;
    SetTextWord(bad, c.first_word,
                EncodeI(Op::kAddqi, 31, hp.plan.sb, 0));
    const auto fs = VerifyHardened(orig, bad, HardenMode::kFull, "gzip");
    EXPECT_TRUE(HasKind(fs, AsmFindingKind::kShadowClobber));
    return;
  }
  FAIL() << "no master component found";
}

TEST(Harden, VerifierRejectsTamperedData) {
  const Program orig = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  const HardenedProgram hp = Harden(orig, HardenMode::kFull);
  Program bad = hp.program;
  ASSERT_GT(bad.chunks.size(), 1u);
  bad.chunks[1].bytes[0] ^= 0xff;
  const auto fs = VerifyHardened(orig, bad, HardenMode::kFull, "gzip");
  EXPECT_TRUE(HasKind(fs, AsmFindingKind::kHardenStructure));
}

TEST(Harden, PlanReservesOnlyUnusedRegisters) {
  const Program orig = BuildWorkload(WorkloadByName("vpr"), kCampaignIters);
  const analyze::AsmProgram ap = analyze::Lift(orig);
  std::uint32_t used = 0;
  for (const auto& i : ap.insts)
    used |= analyze::UseMask(i.d) | analyze::DefMask(i.d);
  const analyze::Cfg cfg = analyze::BuildCfg(ap);
  const HardenPlan plan = PlanHarden(ap, cfg, HardenMode::kFull);
  EXPECT_EQ(plan.ReservedMask() & used, 0u);
  // Deterministic: replanning yields the same reservations and signatures.
  const HardenPlan again = PlanHarden(ap, cfg, HardenMode::kFull);
  EXPECT_EQ(plan.sb, again.sb);
  EXPECT_EQ(plan.g, again.g);
  EXPECT_EQ(plan.shadow_base, again.shadow_base);
  EXPECT_EQ(plan.sig, again.sig);
}

TEST(Harden, RejectsUnresolvedIndirection) {
  const Program p = Assemble(
      "_start: la r4, 0x40000\n"
      "        ldq r5, 0(r4)\n"
      "        jmp r31, r5\n");
  EXPECT_THROW(Harden(p, HardenMode::kFull), std::runtime_error);
}

TEST(Harden, ParseHardenSuffix) {
  std::string base;
  EXPECT_EQ(ParseHardenSuffix("gzip", &base), std::nullopt);
  EXPECT_EQ(ParseHardenSuffix("gzip+sw", &base),
            std::optional<HardenMode>(HardenMode::kFull));
  EXPECT_EQ(base, "gzip");
  EXPECT_EQ(ParseHardenSuffix("mcf+swcfc", &base),
            std::optional<HardenMode>(HardenMode::kCfc));
  EXPECT_EQ(base, "mcf");
  EXPECT_EQ(ParseHardenSuffix("vpr+swdup", &base),
            std::optional<HardenMode>(HardenMode::kDup));
  EXPECT_EQ(base, "vpr");
}

TEST(Harden, ResolveCampaignProgramMatchesDirectConstruction) {
  const Program direct = Harden(
      BuildWorkload(WorkloadByName("gzip"), kCampaignIters), HardenMode::kDup)
                             .program;
  const Program resolved = ResolveCampaignProgram("gzip+swdup");
  ASSERT_EQ(resolved.chunks.size(), direct.chunks.size());
  for (std::size_t i = 0; i < direct.chunks.size(); ++i) {
    EXPECT_EQ(resolved.chunks[i].addr, direct.chunks[i].addr);
    EXPECT_EQ(resolved.chunks[i].bytes, direct.chunks[i].bytes);
  }
  EXPECT_EQ(resolved.entry, direct.entry);
}

TEST(Harden, HardenedWorkloadsGetDistinctCacheKeys) {
  CampaignSpec spec;
  spec.workload = "gzip";
  std::vector<std::string> keys;
  for (const char* w : {"gzip", "gzip+sw", "gzip+swdup", "gzip+swcfc"}) {
    spec.workload = w;
    keys.push_back(spec.CacheKey());
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

TEST(Harden, HardenedCampaignIsJobsInvariant) {
  GoldenSpec gs;
  gs.warmup = 12000;
  gs.points = 3;
  gs.spacing = 500;
  gs.window = 4000;
  gs.slack = 1000;
  CampaignSpec spec;
  spec.workload = "gzip+sw";
  spec.trials = 16;
  spec.golden = gs;

  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  opt.jobs = 1;
  const CampaignResult r1 = RunCampaign(spec, opt);
  opt.jobs = 4;
  const CampaignResult r4 = RunCampaign(spec, opt);
  ASSERT_EQ(r1.trials.size(), 16u);
  ASSERT_EQ(r1.trials.size(), r4.trials.size());
  for (std::size_t i = 0; i < r1.trials.size(); ++i) {
    EXPECT_EQ(r1.trials[i].outcome, r4.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(r1.trials[i].mode, r4.trials[i].mode) << "trial " << i;
    EXPECT_EQ(r1.trials[i].cat, r4.trials[i].cat) << "trial " << i;
    EXPECT_EQ(r1.trials[i].cycles, r4.trials[i].cycles) << "trial " << i;
  }
  EXPECT_EQ(r1.ByOutcome(), r4.ByOutcome());
}

}  // namespace
}  // namespace tfsim
