// Geometry matrix harness: one binary, any core shape.
//
// The pipeline historically assumed the paper's Alpha-21264-class geometry
// in pointer widths, wraparound masks and loop bounds; CoreConfig::Validate
// plus the derived-width refactor (IndexBits/CountBits) made the shape a
// real parameter. This suite pins that down three ways:
//   * Validate() rejects malformed shapes with structured, field-named
//     issues (and Core construction refuses them before any state exists);
//   * a matrix of non-default shapes runs every workload to completion in
//     lockstep with the functional simulator, invariant checker on, with
//     zero violations;
//   * campaign results at a non-default shape are deterministic across
//     worker counts, and the results cache keys on the geometry (two specs
//     differing only in rob_entries land distinct entries — the collision
//     the CacheKey salt bump fixed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "arch/functional_sim.h"
#include "check/invariants.h"
#include "inject/cache.h"
#include "inject/campaign.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CoreConfig::Validate

bool HasIssue(const std::vector<ConfigIssue>& issues,
              const std::string& field) {
  for (const ConfigIssue& i : issues)
    if (i.field == field) return true;
  return false;
}

TEST(GeometryValidate, DefaultShapeIsValid) {
  EXPECT_TRUE(CoreConfig{}.Validate().empty());
}

TEST(GeometryValidate, RejectsNonPow2Btb) {
  CoreConfig cfg;
  cfg.btb_sets = 100;
  EXPECT_TRUE(HasIssue(cfg.Validate(), "btb_sets"));
}

TEST(GeometryValidate, RejectsNonPow2CacheGeometry) {
  CoreConfig cfg;
  cfg.icache_bytes = 3000;
  cfg.dcache_banks = 3;
  const auto issues = cfg.Validate();
  EXPECT_TRUE(HasIssue(issues, "icache_bytes"));
  EXPECT_TRUE(HasIssue(issues, "dcache_banks"));
}

TEST(GeometryValidate, RejectsZeroWidth) {
  CoreConfig cfg;
  cfg.fetch_width = 0;
  EXPECT_TRUE(HasIssue(cfg.Validate(), "fetch_width"));
  cfg = CoreConfig{};
  cfg.retire_width = 0;
  EXPECT_TRUE(HasIssue(cfg.Validate(), "retire_width"));
}

TEST(GeometryValidate, RejectsWidthBeyondDepth) {
  CoreConfig cfg;
  cfg.rob_entries = 8;
  cfg.retire_width = 16;
  EXPECT_TRUE(HasIssue(cfg.Validate(), "retire_width"));
  cfg = CoreConfig{};
  cfg.fetch_queue = 2;
  cfg.fetch_width = 4;
  const auto issues = cfg.Validate();
  EXPECT_TRUE(HasIssue(issues, "fetch_queue") ||
              HasIssue(issues, "decode_width"));
}

TEST(GeometryValidate, RejectsPhysRegsOutsideEncodableRange) {
  CoreConfig cfg;
  cfg.phys_regs = 256;  // regptr fields are 7 bits (paper Table 1)
  EXPECT_TRUE(HasIssue(cfg.Validate(), "phys_regs"));
  cfg.phys_regs = 33;  // fewer than arch regs + 2 cannot rename
  EXPECT_TRUE(HasIssue(cfg.Validate(), "phys_regs"));
}

TEST(GeometryValidate, ValidateOrThrowCarriesAllIssues) {
  CoreConfig cfg;
  cfg.btb_sets = 7;
  cfg.phys_regs = 200;
  try {
    cfg.ValidateOrThrow();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_GE(e.issues.size(), 2u);
    EXPECT_NE(std::string(e.what()).find("btb_sets"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("phys_regs"), std::string::npos);
  }
}

TEST(GeometryValidate, CoreConstructionRefusesInvalidShapes) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), 1);
  CoreConfig cfg;
  cfg.ras_entries = 6;  // non-pow2: pointer wraparound masks would corrupt
  EXPECT_THROW(Core(cfg, prog), ConfigError);
}

// ---------------------------------------------------------------------------
// The shape matrix

struct Shape {
  const char* name;
  CoreConfig cfg;
};

CoreConfig MakeShape(int rob, int sched, int lq, int sq, int pregs,
                     int fetch_w, int retire_w) {
  CoreConfig cfg;
  cfg.rob_entries = rob;
  cfg.sched_entries = sched;
  cfg.lq_entries = lq;
  cfg.sq_entries = sq;
  cfg.phys_regs = pregs;
  cfg.fetch_width = fetch_w;
  cfg.retire_width = retire_w;
  return cfg;
}

const std::vector<Shape>& ShapeMatrix() {
  static const std::vector<Shape> shapes = {
      {"tiny_rob", MakeShape(16, 32, 16, 16, 80, 4, 4)},
      {"narrow_fetch", MakeShape(64, 32, 16, 16, 80, 1, 4)},
      {"deep_lsq", MakeShape(64, 32, 32, 32, 80, 4, 4)},
      {"minimal_pregs", MakeShape(64, 32, 16, 16, 34, 4, 4)},
      {"wide_retire", MakeShape(64, 32, 16, 16, 96, 8, 8)},
      {"max_all", MakeShape(128, 64, 32, 32, 128, 8, 8)},
  };
  return shapes;
}

TEST(GeometryMatrix, EveryShapeValidates) {
  for (const Shape& s : ShapeMatrix())
    EXPECT_TRUE(s.cfg.Validate().empty()) << s.name;
}

// Runs one workload to completion on one shape, in lockstep with the
// functional simulator and with the per-cycle invariant checker armed.
void RunToCompletion(const Shape& shape, const WorkloadInfo& workload) {
  // Small iteration count: the program reaches its exit syscall (the same
  // build the Section 5 software-level experiments use).
  const Program prog = BuildWorkload(workload, 2);
  CoreConfig cfg = shape.cfg;
  cfg.check_invariants = true;
  Core core(cfg, prog);
  FunctionalSim ref(prog);
  std::uint64_t retired = 0;
  // Generous: minimal_pregs/gzip legitimately needs ~550k cycles (two free
  // physical registers serialize nearly every rename).
  const std::uint64_t budget = 1500000;
  for (std::uint64_t c = 0; c < budget && !core.exited(); ++c) {
    core.Cycle();
    ASSERT_EQ(core.halted_exception(), Exception::kNone)
        << shape.name << "/" << workload.name << " raised "
        << ExceptionName(core.halted_exception()) << " at cycle " << c;
    for (const RetireEvent& ev : core.RetiredThisCycle()) {
      const RetireEvent want = ref.Step();
      ASSERT_TRUE(ev == want)
          << shape.name << "/" << workload.name << " retire mismatch #"
          << retired << " at cycle " << c << "\n  core: " << ToString(ev)
          << "\n  ref : " << ToString(want);
      ++retired;
    }
    const check::InvariantChecker* chk = core.invariant_checker();
    ASSERT_TRUE(chk != nullptr);
    ASSERT_EQ(chk->total(), 0u)
        << shape.name << "/" << workload.name << " invariant violation ["
        << check::InvariantKindName(chk->violations().front().kind)
        << "] at cycle " << chk->violations().front().cycle << ": "
        << chk->violations().front().detail;
  }
  EXPECT_TRUE(core.exited())
      << shape.name << "/" << workload.name
      << " did not run to completion in " << budget << " cycles (retired "
      << retired << ")";
  EXPECT_GT(retired, 100u) << shape.name << "/" << workload.name;
}

class GeometryMatrix : public ::testing::TestWithParam<int> {};

TEST_P(GeometryMatrix, AllWorkloadsCompleteWithInvariantsClean) {
  const Shape& shape = ShapeMatrix()[static_cast<std::size_t>(GetParam())];
  for (const WorkloadInfo& w : AllWorkloads()) {
    RunToCompletion(shape, w);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryMatrix,
    ::testing::Range(0, static_cast<int>(ShapeMatrix().size())),
    [](const ::testing::TestParamInfo<int>& p) {
      return ShapeMatrix()[static_cast<std::size_t>(p.param)].name;
    });

// ---------------------------------------------------------------------------
// Campaign determinism and cache keying at non-default shapes

// Scoped TFI_CACHE_DIR override pointing at a fresh temp directory (same
// idiom as test_resilience.cpp).
class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const std::string& name)
      : dir_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(dir_);
    ::setenv("TFI_CACHE_DIR", dir_.c_str(), 1);
  }
  ~ScopedCacheDir() {
    fs::remove_all(dir_);
    ::unsetenv("TFI_CACHE_DIR");
  }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

CampaignSpec SmallShapedCampaign(int rob_entries) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 16;
  spec.core.rob_entries = rob_entries;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;
  return spec;
}

bool SameRecords(const std::vector<TrialRecord>& a,
                 const std::vector<TrialRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].outcome != b[i].outcome || a[i].cycles != b[i].cycles)
      return false;
  return true;
}

TEST(GeometryCampaign, CacheKeyDistinguishesGeometry) {
  const CampaignSpec a = SmallShapedCampaign(16);
  const CampaignSpec b = SmallShapedCampaign(64);
  EXPECT_NE(a.CacheKey(), b.CacheKey())
      << "specs differing only in rob_entries must not share a cache key";
}

TEST(GeometryCampaign, DistinctGeometriesCacheDistinctResults) {
  ScopedCacheDir cache("tfi_test_geometry_cache");
  const CampaignSpec small = SmallShapedCampaign(16);
  const CampaignSpec big = SmallShapedCampaign(64);

  CampaignOptions opt;
  opt.verbose = false;
  const CampaignResult r_small = RunCampaign(small, opt);

  // Only the shape that ran is cached; the other geometry misses.
  EXPECT_TRUE(LoadCachedCampaign(small).has_value());
  EXPECT_FALSE(LoadCachedCampaign(big).has_value())
      << "rob=64 was served rob=16's results";

  const CampaignResult r_big = RunCampaign(big, opt);
  const auto c_small = LoadCachedCampaign(small);
  const auto c_big = LoadCachedCampaign(big);
  ASSERT_TRUE(c_small.has_value());
  ASSERT_TRUE(c_big.has_value());
  EXPECT_TRUE(SameRecords(c_small->trials, r_small.trials));
  EXPECT_TRUE(SameRecords(c_big->trials, r_big.trials));
  EXPECT_FALSE(SameRecords(c_small->trials, c_big->trials))
      << "a 16-entry and a 64-entry ROB produced identical trial streams — "
         "the cache is almost certainly aliasing";
}

TEST(GeometryCampaign, NonDefaultShapeDeterministicAcrossJobs) {
  CampaignSpec spec = SmallShapedCampaign(16);
  spec.core.lq_entries = 8;
  spec.core.sq_entries = 8;
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  const CampaignResult serial = RunCampaign(spec, opt);
  opt.jobs = 3;
  const CampaignResult threaded = RunCampaign(spec, opt);
  EXPECT_TRUE(SameRecords(serial.trials, threaded.trials))
      << "trial records at a non-default geometry differ across --jobs";
}

}  // namespace
}  // namespace tfsim
