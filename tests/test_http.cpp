// The minimal loopback HTTP listener behind the campaign status endpoint:
// request routing, query parsing, error statuses, ephemeral ports and
// clean/idempotent shutdown.
#include <gtest/gtest.h>

#include <string>

#include "util/http.h"

namespace tfsim {
namespace {

TEST(Http, RoundTripOnEphemeralPort) {
  HttpServer server;
  std::string err;
  ASSERT_TRUE(server.Start(0, [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "{\"path\":\"" + req.path + "\"}\n";
    return resp;
  }, &err)) << err;
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  std::string body;
  int status = 0;
  ASSERT_TRUE(HttpGet(server.port(), "/progress", &body, &status, &err)) << err;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "{\"path\":\"/progress\"}\n");

  // The server stays up across sequential requests (Connection: close).
  ASSERT_TRUE(HttpGet(server.port(), "/metrics", &body, &status, &err)) << err;
  EXPECT_EQ(body, "{\"path\":\"/metrics\"}\n");

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(Http, ParsesQueryParameters) {
  HttpServer server;
  HttpRequest seen;
  std::string err;
  ASSERT_TRUE(server.Start(0, [&](const HttpRequest& req) {
    seen = req;
    return HttpResponse{};
  }, &err)) << err;
  std::string body;
  ASSERT_TRUE(HttpGet(server.port(), "/events?tail=5&label=a%20b", &body,
                      nullptr, &err))
      << err;
  EXPECT_EQ(seen.method, "GET");
  EXPECT_EQ(seen.path, "/events");
  ASSERT_EQ(seen.query.count("tail"), 1u);
  EXPECT_EQ(seen.query.at("tail"), "5");
  EXPECT_EQ(seen.query.at("label"), "a b");  // percent-decoded
}

TEST(Http, PropagatesHandlerStatus) {
  HttpServer server;
  std::string err;
  ASSERT_TRUE(server.Start(0, [](const HttpRequest& req) {
    HttpResponse resp;
    if (req.path != "/ok") {
      resp.status = 404;
      resp.body = "{\"error\":\"not found\"}\n";
    }
    return resp;
  }, &err)) << err;
  std::string body;
  int status = 0;
  ASSERT_TRUE(HttpGet(server.port(), "/nope", &body, &status, &err)) << err;
  EXPECT_EQ(status, 404);
  EXPECT_NE(body.find("not found"), std::string::npos);
  ASSERT_TRUE(HttpGet(server.port(), "/ok", &body, &status, &err)) << err;
  EXPECT_EQ(status, 200);
}

TEST(Http, ClientReportsConnectionFailure) {
  // Start then stop a server to obtain a port that is (very likely) closed.
  HttpServer server;
  std::string err;
  ASSERT_TRUE(server.Start(0, [](const HttpRequest&) {
    return HttpResponse{};
  }, &err)) << err;
  const std::uint16_t port = server.port();
  server.Stop();
  std::string body;
  EXPECT_FALSE(HttpGet(port, "/progress", &body, nullptr, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace tfsim
