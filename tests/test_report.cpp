#include <gtest/gtest.h>

#include <sstream>

#include "inject/report.h"

namespace tfsim {
namespace {

CampaignResult Sample() {
  CampaignResult r;
  r.spec.workload = "demo";
  TrialRecord a;
  a.outcome = Outcome::kSdc;
  a.mode = FailureMode::kRegfile;
  a.cat = StateCat::kRegfile;
  a.storage = Storage::kRam;
  a.cycles = 12;
  a.valid_instrs = 30;
  a.inflight = 44;
  TrialRecord b;
  b.outcome = Outcome::kMicroArchMatch;
  b.cat = StateCat::kPc;
  b.storage = Storage::kLatch;
  r.trials = {a, b};
  r.inventory[static_cast<int>(StateCat::kRegfile)] = {80, 5200};
  return r;
}

TEST(Report, TrialsCsvHasHeaderAndRows) {
  std::ostringstream os;
  WriteTrialsCsv(Sample(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("workload,outcome"), std::string::npos);
  EXPECT_NE(out.find("demo,SDC,regfile,regfile,ram,12,30,44"),
            std::string::npos);
  EXPECT_NE(out.find("demo,uArch Match,none,pc,latch,0,0,0"),
            std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Report, CategoryCsvAggregates) {
  std::ostringstream os;
  WriteCategoryCsv(Sample(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("regfile,1,0,0,1,0,0,80,5200"), std::string::npos);
  EXPECT_NE(out.find("pc,1,1,0,0,0,0,0"), std::string::npos);
}

TEST(Report, UtilizationCsvMarksBenign) {
  std::ostringstream os;
  WriteUtilizationCsv(Sample(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("30,0"), std::string::npos);
  EXPECT_NE(out.find("0,1"), std::string::npos);
}

}  // namespace
}  // namespace tfsim
