// asmlint adversarial fixtures: each seeded defect must surface as exactly
// the expected finding class at the expected location, clean programs must
// stay clean, and the allowlist must suppress findings without rotting.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "analyze/asm/asmlint.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

using analyze::AllowEntry;
using analyze::AsmFinding;
using analyze::AsmFindingKind;
using analyze::AsmLintOptions;
using analyze::Lift;
using analyze::RunAsmLint;

std::vector<AsmFinding> LintSource(const std::string& src,
                                   std::vector<AllowEntry>* allow = nullptr) {
  std::vector<AllowEntry> none;
  AsmLintOptions opt;
  opt.unit = "fixture";
  return RunAsmLint(Lift(Assemble(src)), allow ? *allow : none, opt);
}

bool HasKind(const std::vector<AsmFinding>& fs, AsmFindingKind k) {
  return std::any_of(fs.begin(), fs.end(),
                     [k](const AsmFinding& f) { return f.kind == k; });
}

// A minimal clean program: defines everything it reads, stores are read
// back, and it exits.
constexpr const char* kClean =
    "_start: addqi r31, 3, r1\n"
    "        addqi r31, 4, r2\n"
    "        addq r1, r2, r3\n"
    "        la r4, 0x40000\n"
    "        stq r3, 0(r4)\n"
    "        ldq a1, 0(r4)\n"
    "        li a0, 0\n"
    "        li v0, 1\n"
    "        syscall\n";

TEST(AsmLint, CleanFixtureHasNoFindings) {
  const auto fs = LintSource(kClean);
  EXPECT_TRUE(fs.empty()) << (fs.empty() ? "" : fs[0].Format());
}

TEST(AsmLint, UseBeforeDef) {
  const auto fs = LintSource(
      "_start: addq r4, r5, r6\n"  // r4, r5 never written on any path
      "        la r7, 0x40000\n"
      "        stq r6, 0(r7)\n"
      "        li v0, 1\n"
      "        syscall\n");
  ASSERT_TRUE(HasKind(fs, AsmFindingKind::kUseBeforeDef));
  const auto it =
      std::find_if(fs.begin(), fs.end(), [](const AsmFinding& f) {
        return f.kind == AsmFindingKind::kUseBeforeDef;
      });
  EXPECT_EQ(it->where, "_start");
}

TEST(AsmLint, DefinedOnOnlyOnePathIsStillUseBeforeDef) {
  const auto fs = LintSource(
      "_start: addqi r31, 1, r1\n"
      "        la r3, 0x40000\n"
      "        beq r1, skip\n"
      "        addqi r31, 5, r2\n"
      "skip:   stq r2, 0(r3)\n"  // r2 undefined when the branch is taken
      "        li v0, 1\n"
      "        syscall\n");
  EXPECT_TRUE(HasKind(fs, AsmFindingKind::kUseBeforeDef));
}

TEST(AsmLint, DeadValue) {
  const auto fs = LintSource(
      "_start: addqi r31, 3, r1\n"
      "        addq r1, r1, r9\n"  // r9 never read again
      "        li v0, 1\n"
      "        syscall\n");
  ASSERT_TRUE(HasKind(fs, AsmFindingKind::kDeadValue));
}

TEST(AsmLint, TrappingDeadValueIsNotReported) {
  // divq can fault on a zero divisor, so a dead result is not removable and
  // must not be flagged as a dead value.
  const auto fs = LintSource(
      "_start: addqi r31, 3, r1\n"
      "        divq r1, r1, r9\n"
      "        li v0, 1\n"
      "        syscall\n");
  EXPECT_FALSE(HasKind(fs, AsmFindingKind::kDeadValue));
}

TEST(AsmLint, DeadStore) {
  const auto fs = LintSource(
      "_start: addqi r31, 3, r1\n"
      "        la r2, 0x40000\n"
      "        stq r1, 0(r2)\n"   // overwritten before any read
      "        stq r1, 8(r2)\n"
      "        stq r1, 0(r2)\n"
      "        ldq a1, 0(r2)\n"
      "        li a0, 0\n"
      "        li v0, 1\n"
      "        syscall\n");
  ASSERT_TRUE(HasKind(fs, AsmFindingKind::kDeadStore));
  // Exactly the first store of the matching pair, not the disjoint one.
  std::size_t n = 0;
  for (const auto& f : fs)
    if (f.kind == AsmFindingKind::kDeadStore) ++n;
  EXPECT_EQ(n, 1u);
}

TEST(AsmLint, InterveningLoadClearsDeadStore) {
  const auto fs = LintSource(
      "_start: addqi r31, 3, r1\n"
      "        la r2, 0x40000\n"
      "        stq r1, 0(r2)\n"
      "        ldq r3, 0(r2)\n"
      "        stq r3, 0(r2)\n"
      "        ldq a1, 0(r2)\n"
      "        li a0, 0\n"
      "        li v0, 1\n"
      "        syscall\n");
  EXPECT_FALSE(HasKind(fs, AsmFindingKind::kDeadStore));
}

TEST(AsmLint, UnreachableBlock) {
  const auto fs = LintSource(
      "_start: br done\n"
      "        addqi r31, 1, r1\n"  // skipped forever
      "        la r2, 0x40000\n"
      "        stq r1, 0(r2)\n"
      "done:   li v0, 1\n"
      "        syscall\n");
  ASSERT_TRUE(HasKind(fs, AsmFindingKind::kUnreachable));
}

TEST(AsmLint, IndirectUnresolved) {
  const auto fs = LintSource(
      "_start: la r4, 0x40000\n"
      "        ldq r5, 0(r4)\n"
      "        jmp r31, r5\n");
  ASSERT_TRUE(HasKind(fs, AsmFindingKind::kIndirectUnresolved));
  // With the CFG under-approximated, unreachable findings are suppressed.
  EXPECT_FALSE(HasKind(fs, AsmFindingKind::kUnreachable));
}

TEST(AsmLint, MisalignedStaticAddress) {
  const auto fs = LintSource(
      "_start: la r2, 0x40003\n"
      "        ldq r1, 0(r2)\n"  // 8-byte load at 0x40003: guaranteed trap
      "        li v0, 1\n"
      "        syscall\n");
  ASSERT_TRUE(HasKind(fs, AsmFindingKind::kMisaligned));
}

TEST(AsmLint, StackDiscipline) {
  const auto fs = LintSource(
      "_start: li sp, 0x50000\n"       // materialization: allowed
      "        subqi sp, 16, sp\n"     // immediate adjust: allowed
      "        addq r1, r2, sp\n"      // arbitrary arithmetic into sp: finding
      "        li v0, 1\n"
      "        syscall\n");
  std::size_t n = 0;
  for (const auto& f : fs)
    if (f.kind == AsmFindingKind::kStackDiscipline) ++n;
  EXPECT_EQ(n, 1u);
}

TEST(AsmLint, ReachableIllegalWord) {
  const auto fs = LintSource(
      "_start: addqi r31, 1, r1\n"
      "        .long 0xffffffff\n"
      "        li v0, 1\n"
      "        syscall\n");
  ASSERT_TRUE(HasKind(fs, AsmFindingKind::kIllegalWord));
}

TEST(AsmLint, AllowlistSuppressesAndTracksUse) {
  std::vector<AllowEntry> allow(1);
  allow[0].key = "fixture.dead-value._start+0x4";
  allow[0].why = "test";
  const auto fs = LintSource(
      "_start: addqi r31, 3, r1\n"
      "        addq r1, r1, r9\n"
      "        li v0, 1\n"
      "        syscall\n",
      &allow);
  EXPECT_FALSE(HasKind(fs, AsmFindingKind::kDeadValue));
  EXPECT_TRUE(allow[0].used);
  EXPECT_TRUE(analyze::UnusedAllowFindings(allow).empty());
}

TEST(AsmLint, UnusedAllowlistEntryIsAFinding) {
  std::vector<AllowEntry> allow(1);
  allow[0].key = "fixture.dead-value.nowhere";
  allow[0].why = "stale";
  const auto unused = analyze::UnusedAllowFindings(allow);
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0].kind, AsmFindingKind::kUnusedAllowlist);
}

// The shipping allowlist must exactly cover the suite: every workload lints
// clean through it and every entry is consumed (the same invariant the
// asmlint_workloads ctest enforces, pinned here at the API level).
TEST(AsmLint, WorkloadsLintCleanThroughShippedAllowlist) {
  std::ifstream in(std::string(TFSIM_SOURCE_DIR) + "/tools/asmlint_allow.txt");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  std::vector<AllowEntry> allow;
  std::string error;
  ASSERT_TRUE(analyze::ParseAllowlist(ss.str(), &allow, &error)) << error;

  for (const auto& w : AllWorkloads()) {
    AsmLintOptions opt;
    opt.unit = w.name;
    const auto fs =
        RunAsmLint(Lift(BuildWorkload(w, kCampaignIters)), allow, opt);
    EXPECT_TRUE(fs.empty())
        << w.name << ": " << (fs.empty() ? "" : fs[0].Format());
  }
  EXPECT_TRUE(analyze::UnusedAllowFindings(allow).empty());
}

}  // namespace
}  // namespace tfsim
