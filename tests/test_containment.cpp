// Trial containment: the TrialRunner watchdog deadline (hung trials become
// quarantined timeout records instead of stalling workers) and the
// forked-worker isolation mode (crashing trials kill only their worker; the
// supervisor records the loss, respawns, and surviving records stay
// byte-identical to an in-process run at any worker count).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "inject/cache.h"
#include "inject/campaign.h"
#include "inject/isolate.h"
#include "obs/metrics.h"

namespace tfsim {
namespace {

namespace fs = std::filesystem;

class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const std::string& name)
      : dir_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(dir_);
    ::setenv("TFI_CACHE_DIR", dir_.c_str(), 1);
  }
  ~ScopedCacheDir() {
    fs::remove_all(dir_);
    ::unsetenv("TFI_CACHE_DIR");
  }

 private:
  std::string dir_;
};

CampaignSpec SmallCampaign(int trials) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = trials;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;
  return spec;
}

CampaignOptions QuietLive() {
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  return opt;
}

void ExpectSameSurvivors(const CampaignResult& a, const CampaignResult& b,
                         const std::vector<std::size_t>& skip = {}) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    if (std::find(skip.begin(), skip.end(), i) != skip.end()) continue;
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(a.trials[i].mode, b.trials[i].mode) << "trial " << i;
    EXPECT_EQ(a.trials[i].cat, b.trials[i].cat) << "trial " << i;
    EXPECT_EQ(a.trials[i].storage, b.trials[i].storage) << "trial " << i;
    EXPECT_EQ(a.trials[i].cycles, b.trials[i].cycles) << "trial " << i;
    EXPECT_EQ(a.trials[i].valid_instrs, b.trials[i].valid_instrs) << i;
    EXPECT_EQ(a.trials[i].inflight, b.trials[i].inflight) << i;
  }
}

TEST(Watchdog, HungHookIsQuarantinedAsTimeout) {
  const CampaignSpec spec = SmallCampaign(6);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  for (int jobs : {1, 4}) {
    obs::MetricsRegistry metrics;
    CampaignOptions opt = QuietLive();
    opt.jobs = jobs;
    opt.trial_timeout_ms = 50;
    opt.retries = 3;  // a timeout must NOT consume retries
    opt.obs.sinks.metrics = &metrics;
    opt.trial_fault_hook = [](std::size_t i) {
      // Trial 2 wedges: the hook outlives the deadline; the in-loop check
      // fires on the first cycle batch after the hook returns.
      if (i == 2) std::this_thread::sleep_for(std::chrono::milliseconds(120));
    };
    const CampaignResult r = RunCampaign(spec, opt);

    ASSERT_EQ(r.trials.size(), 6u) << "jobs=" << jobs;
    EXPECT_EQ(r.trials[2].outcome, Outcome::kTrialError);
    ASSERT_EQ(r.quarantined.size(), 1u);
    EXPECT_EQ(r.quarantined[0].index, 2u);
    EXPECT_EQ(r.quarantined[0].reason, QuarantinedTrial::Reason::kTimeout);
    EXPECT_NE(r.quarantined[0].message.find("watchdog"), std::string::npos);
    EXPECT_EQ(metrics.GetCounter("campaign.trials.timeout").value(), 1u);
    // Surviving trials classified exactly as the clean run's.
    ExpectSameSurvivors(r, reference, {2});
  }
}

TEST(Watchdog, RunnerReportsTimedOutWithoutRetrying) {
  const CampaignSpec spec = SmallCampaign(1);
  CampaignOptions opt = QuietLive();
  const CampaignResult warm = RunCampaign(spec, opt);
  ASSERT_EQ(warm.trials.size(), 1u);

  // Re-create the golden run and drive the runner directly.
  // (Cheapest route: a one-trial campaign with a hook that always stalls.)
  obs::MetricsRegistry metrics;
  CampaignOptions hung = QuietLive();
  hung.trial_timeout_ms = 40;
  hung.retries = 5;
  hung.obs.sinks.metrics = &metrics;
  int calls = 0;
  hung.trial_fault_hook = [&calls](std::size_t) {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  const CampaignResult r = RunCampaign(spec, hung);
  // One attempt only: timeouts skip the retry loop (a deterministic hang
  // would hang every retry too).
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0].reason, QuarantinedTrial::Reason::kTimeout);
}

TEST(Watchdog, EnvOverrideArmsTheDeadline) {
  ::setenv("TFI_TRIAL_TIMEOUT", "45", 1);
  const CampaignSpec spec = SmallCampaign(3);
  CampaignOptions opt = QuietLive();  // trial_timeout_ms left at 0
  opt.trial_fault_hook = [](std::size_t i) {
    if (i == 1) std::this_thread::sleep_for(std::chrono::milliseconds(110));
  };
  const CampaignResult r = RunCampaign(spec, opt);
  ::unsetenv("TFI_TRIAL_TIMEOUT");
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0].index, 1u);
  EXPECT_EQ(r.quarantined[0].reason, QuarantinedTrial::Reason::kTimeout);
}

#ifndef _WIN32

TEST(Isolate, CleanRunMatchesInProcessByteForByte) {
  ASSERT_TRUE(IsolationSupported());
  const CampaignSpec spec = SmallCampaign(10);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  for (int jobs : {1, 4}) {
    CampaignOptions opt = QuietLive();
    opt.jobs = jobs;
    opt.isolate_trials = true;
    const CampaignResult r = RunCampaign(spec, opt);
    EXPECT_FALSE(r.interrupted) << "jobs=" << jobs;
    EXPECT_FALSE(r.containment_exhausted);
    EXPECT_EQ(r.worker_restarts, 0u);
    EXPECT_TRUE(r.quarantined.empty());
    ExpectSameSurvivors(r, reference);
  }
}

TEST(Isolate, CrashingTrialIsContainedAndRecorded) {
  const CampaignSpec spec = SmallCampaign(10);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  for (int jobs : {1, 4}) {
    obs::MetricsRegistry metrics;
    CampaignOptions opt = QuietLive();
    opt.jobs = jobs;
    opt.isolate_trials = true;
    opt.obs.sinks.metrics = &metrics;
    // The hook runs in the forked child: trial 4 takes its whole worker
    // down with a real SIGSEGV-class death.
    opt.trial_fault_hook = [](std::size_t i) {
      if (i == 4) std::raise(SIGKILL);
    };
    const CampaignResult r = RunCampaign(spec, opt);

    ASSERT_EQ(r.trials.size(), 10u) << "jobs=" << jobs;
    EXPECT_FALSE(r.interrupted);
    EXPECT_FALSE(r.containment_exhausted);
    EXPECT_EQ(r.trials[4].outcome, Outcome::kTrialError);
    ASSERT_EQ(r.quarantined.size(), 1u);
    EXPECT_EQ(r.quarantined[0].index, 4u);
    EXPECT_EQ(r.quarantined[0].reason, QuarantinedTrial::Reason::kCrash);
    EXPECT_NE(r.quarantined[0].message.find("signal"), std::string::npos);
    EXPECT_EQ(metrics.GetCounter("campaign.trials.crash").value(), 1u);
    if (jobs == 1) {
      // Serial: trials 5..9 were still owed when the worker died, so the
      // supervisor must have respawned exactly once. (At jobs=4 the other
      // workers may drain the queue before the death is even noticed, so
      // the respawn is scheduling-dependent.)
      EXPECT_EQ(r.worker_restarts, 1u);
      EXPECT_EQ(metrics.GetCounter("campaign.workers.restarts").value(), 1u);
    } else {
      EXPECT_LE(r.worker_restarts, 1u);
    }
    // Every surviving record byte-identical to the in-process clean run.
    ExpectSameSurvivors(r, reference, {4});
  }
}

TEST(Isolate, ChildWatchdogConvertsHangsToTimeouts) {
  const CampaignSpec spec = SmallCampaign(8);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  CampaignOptions opt = QuietLive();
  opt.jobs = 2;
  opt.isolate_trials = true;
  opt.trial_timeout_ms = 50;
  opt.trial_fault_hook = [](std::size_t i) {
    if (i == 3) std::this_thread::sleep_for(std::chrono::milliseconds(120));
  };
  const CampaignResult r = RunCampaign(spec, opt);

  ASSERT_EQ(r.trials.size(), 8u);
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0].index, 3u);
  EXPECT_EQ(r.quarantined[0].reason, QuarantinedTrial::Reason::kTimeout);
  // The worker survived (the child's own watchdog fired, no kill needed).
  EXPECT_EQ(r.worker_restarts, 0u);
  ExpectSameSurvivors(r, reference, {3});
}

TEST(Isolate, ExhaustedRestartBudgetQuarantinesTheRemainder) {
  ScopedCacheDir cache("tfi_isolate_budget");
  const CampaignSpec spec = SmallCampaign(10);

  CampaignOptions opt = QuietLive();
  opt.use_cache = true;  // prove the poisoned result is NOT cached
  opt.jobs = 1;
  opt.isolate_trials = true;
  opt.max_worker_restarts = 1;
  opt.checkpoint_every = 1;
  // Every trial from 2 on crashes its worker: crash at 2, respawn (budget
  // spent), crash at 3, budget exhausted -> 4..9 are synthesized holes.
  opt.trial_fault_hook = [](std::size_t i) {
    if (i >= 2) std::raise(SIGKILL);
  };
  const CampaignResult r = RunCampaign(spec, opt);

  ASSERT_EQ(r.trials.size(), 10u);
  EXPECT_TRUE(r.containment_exhausted);
  EXPECT_EQ(r.worker_restarts, 1u);
  ASSERT_EQ(r.quarantined.size(), 8u);  // 2 crashes + 6 budget holes
  EXPECT_EQ(r.quarantined[0].reason, QuarantinedTrial::Reason::kCrash);
  EXPECT_EQ(r.quarantined[1].reason, QuarantinedTrial::Reason::kCrash);
  for (std::size_t q = 2; q < r.quarantined.size(); ++q)
    EXPECT_EQ(r.quarantined[q].reason, QuarantinedTrial::Reason::kBudget);

  // The poisoned result must not enter the cache; the checkpoint journal
  // holds only trials that actually EXECUTED (0, 1, and the two recorded
  // crashes) — never the synthesized budget holes — so a re-run resumes
  // past them and finishes the job.
  EXPECT_FALSE(LoadCachedCampaign(spec).has_value());
  const auto ckpt = LoadCampaignCheckpoint(spec);
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->size(), 4u);

  CampaignOptions clean = QuietLive();
  clean.use_cache = true;
  clean.checkpoint_every = 4;
  const CampaignResult healed = RunCampaign(spec, clean);
  EXPECT_FALSE(healed.containment_exhausted);
  ASSERT_EQ(healed.trials.size(), 10u);
  // The crash records persisted (indices 2 and 3, like any quarantine); the
  // budget holes did not — trials 4..9 executed for real this time.
  EXPECT_EQ(healed.quarantined.size(), 2u);
  for (std::size_t i = 4; i < 10; ++i)
    EXPECT_NE(healed.trials[i].outcome, Outcome::kTrialError) << i;
}

TEST(Isolate, FallsBackInProcessWhenTracing) {
  // Tracing needs the trial core in-process; --isolate-trials must degrade
  // to normal execution, not silently drop traces.
  const CampaignSpec spec = SmallCampaign(4);
  CampaignOptions opt = QuietLive();
  opt.isolate_trials = true;
  opt.obs.collect_prop_traces = true;
  const CampaignResult r = RunCampaign(spec, opt);
  EXPECT_EQ(r.prop_traces.size(), 4u);
  EXPECT_FALSE(r.containment_exhausted);
}

#endif  // !_WIN32

}  // namespace
}  // namespace tfsim
