// Integration tests for the detailed pipeline: co-simulation against the
// functional reference, determinism, snapshot/restore, recovery paths.
#include <gtest/gtest.h>

#include <sstream>

#include "arch/functional_sim.h"
#include "isa/assemble.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

// Runs the pipeline and functional simulator in lockstep, asserting that the
// retire streams are identical.
void CoSim(const Program& prog, std::uint64_t cycles,
           CoreConfig cfg = CoreConfig{}) {
  Core core(cfg, prog);
  FunctionalSim ref(prog);
  for (std::uint64_t c = 0; c < cycles; ++c) {
    core.Cycle();
    ASSERT_EQ(core.halted_exception(), Exception::kNone) << "cycle " << c;
    ASSERT_FALSE(core.itlb_miss()) << "cycle " << c;
    for (const RetireEvent& ev : core.RetiredThisCycle()) {
      const RetireEvent want = ref.Step();
      ASSERT_EQ(ev, want) << "cycle " << c << "\n  core: " << ToString(ev)
                          << "\n  ref : " << ToString(want);
    }
    if (core.exited()) break;
  }
}

class WorkloadCoSim : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadCoSim, RetireStreamMatchesFunctionalReference) {
  const Program prog =
      BuildWorkload(WorkloadByName(GetParam()), kCampaignIters);
  CoSim(prog, 30000);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadCoSim,
                         ::testing::Values("bzip2", "crafty", "gap", "gcc",
                                           "gzip", "mcf", "parser", "twolf",
                                           "vortex", "vpr"),
                         [](const auto& p) { return std::string(p.param); });

class WorkloadCoSimProtected : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadCoSimProtected, ProtectionsAreFunctionallyTransparent) {
  // With all four mechanisms on and no faults, execution must be identical.
  CoreConfig cfg;
  cfg.protect = ProtectionConfig::All();
  const Program prog =
      BuildWorkload(WorkloadByName(GetParam()), kCampaignIters);
  CoSim(prog, 15000, cfg);
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadCoSimProtected,
                         ::testing::Values("gzip", "gcc", "mcf", "vpr"),
                         [](const auto& p) { return std::string(p.param); });

TEST(Core, RunsProgramsToCompletion) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), 2);
  Core core(CoreConfig{}, prog);
  FunctionalSim ref(prog);
  ref.Run(1u << 30);
  for (int c = 0; c < 500000 && !core.exited(); ++c) core.Cycle();
  ASSERT_TRUE(core.exited());
  EXPECT_EQ(core.output(), ref.state().output);
  EXPECT_FALSE(core.output().empty());
}

TEST(Core, SyscallsSerializeCorrectly) {
  // Per-iteration write syscalls force repeated full flushes mid-execution.
  const Program prog = BuildWorkload(WorkloadByName("gcc"), 3, true);
  Core core(CoreConfig{}, prog);
  FunctionalSim ref(prog);
  std::uint64_t checked = 0;
  for (int c = 0; c < 300000 && !core.exited(); ++c) {
    core.Cycle();
    ASSERT_EQ(core.halted_exception(), Exception::kNone);
    for (const RetireEvent& ev : core.RetiredThisCycle()) {
      const RetireEvent want = ref.Step();
      ASSERT_EQ(ev, want) << ToString(ev) << " vs " << ToString(want);
      ++checked;
    }
  }
  EXPECT_TRUE(core.exited());
  EXPECT_GT(core.stats().full_flushes, 3u);  // one per syscall at least
  EXPECT_GT(checked, 1000u);
}

TEST(Core, Deterministic) {
  const Program prog = BuildWorkload(WorkloadByName("twolf"), kCampaignIters);
  Core a(CoreConfig{}, prog), b(CoreConfig{}, prog);
  for (int c = 0; c < 5000; ++c) {
    a.Cycle();
    b.Cycle();
  }
  EXPECT_EQ(a.StateHash(), b.StateHash());
  EXPECT_EQ(a.RetiredTotal(), b.RetiredTotal());
}

TEST(Core, SnapshotRestoreReplaysIdentically) {
  const Program prog = BuildWorkload(WorkloadByName("vortex"), kCampaignIters);
  Core core(CoreConfig{}, prog);
  for (int c = 0; c < 8000; ++c) core.Cycle();
  const Core::Snapshot snap = core.Save();

  std::vector<std::uint64_t> hashes;
  for (int c = 0; c < 1000; ++c) {
    core.Cycle();
    hashes.push_back(core.StateHash());
  }
  core.Load(snap);
  EXPECT_EQ(core.RetiredTotal(), snap.retired_total);
  for (int c = 0; c < 1000; ++c) {
    core.Cycle();
    ASSERT_EQ(core.StateHash(), hashes[static_cast<std::size_t>(c)])
        << "divergence after restore at cycle " << c;
  }
}

TEST(Core, ExceptionHaltsTheMachine) {
  const Program prog = Assemble(R"(
      li r1, 1
      divq r1, zero, r2
      hang: br hang
  )");
  Core core(CoreConfig{}, prog);
  for (int c = 0; c < 200 && core.halted_exception() == Exception::kNone; ++c)
    core.Cycle();
  EXPECT_EQ(core.halted_exception(), Exception::kDivZero);
  const std::uint64_t retired = core.RetiredTotal();
  core.Cycle();  // machine is frozen afterwards
  EXPECT_EQ(core.RetiredTotal(), retired);
}

TEST(Core, MispredictRecoveryPreservesCorrectness) {
  // A data-dependent branch pattern the predictor cannot learn.
  const Program prog = Assemble(R"(
      _start:
      li r1, 400          ; iterations
      li r2, 12345        ; lcg state
      li r3, 0            ; checksum
      li r5, 1103515245
      loop:
      mulq r2, r5, r2
      addqi r2, 12345, r2
      srlqi r2, 13, r4
      andqi r4, 1, r4
      beq r4, even
      addqi r3, 3, r3
      br next
      even:
      xorqi r3, 7, r3
      next:
      subqi r1, 1, r1
      bgt r1, loop
      hang: br hang
  )");
  Core core(CoreConfig{}, prog);
  FunctionalSim ref(prog);
  for (int c = 0; c < 20000; ++c) {
    core.Cycle();
    for (const RetireEvent& ev : core.RetiredThisCycle())
      ASSERT_EQ(ev, ref.Step());
  }
  EXPECT_GT(core.stats().mispredicts, 50u);  // predictor genuinely stressed
}

TEST(Core, MemoryOrderViolationsAreDetectedAndRecovered) {
  // A store whose address depends on a long-latency chain, followed
  // immediately by a load to the same address: the load issues early
  // (speculation past the unknown store address), then must be squashed.
  const Program prog = Assemble(R"(
      _start:
      li r1, 300
      la r2, buf
      li r6, 1
      loop:
      mulq r6, r6, r7     ; slow chain feeding the store address
      mulq r7, r7, r7
      andqi r7, 56, r7
      addq r2, r7, r8
      stq r1, 0(r8)       ; store with late-resolving address
      ldq r9, 0(r8)       ; dependent load, same address
      addq r9, r6, r6
      andqi r6, 1023, r6
      bisqi r6, 1, r6
      subqi r1, 1, r1
      bgt r1, loop
      hang: br hang
      .data
      buf: .space 64
  )");
  Core core(CoreConfig{}, prog);
  FunctionalSim ref(prog);
  for (int c = 0; c < 30000; ++c) {
    core.Cycle();
    for (const RetireEvent& ev : core.RetiredThisCycle())
      ASSERT_EQ(ev, ref.Step()) << "cycle " << c;
  }
  EXPECT_GT(core.RetiredTotal(), 3000u);
}

TEST(Core, InFlightStaysWithinPaperCapacity) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  Core core(CoreConfig{}, prog);
  std::uint64_t max_if = 0;
  for (int c = 0; c < 20000; ++c) {
    core.Cycle();
    max_if = std::max(max_if, core.InFlight());
  }
  EXPECT_LE(max_if, 132u);  // "up to 132 instructions in-flight"
  EXPECT_GT(max_if, 60u);   // and the machine really fills up
}

TEST(Core, IpcInPlausibleRange) {
  for (const char* name : {"gzip", "vpr"}) {
    const Program prog = BuildWorkload(WorkloadByName(name), kCampaignIters);
    Core core(CoreConfig{}, prog);
    for (int c = 0; c < 30000; ++c) core.Cycle();
    EXPECT_GT(core.stats().Ipc(), 0.5) << name;
    EXPECT_LT(core.stats().Ipc(), 4.0) << name;
  }
}

TEST(Core, ArchViewHashStableAcrossTimingButNotValues) {
  const Program prog = BuildWorkload(WorkloadByName("gcc"), kCampaignIters);
  Core a(CoreConfig{}, prog), b(CoreConfig{}, prog);
  for (int c = 0; c < 3000; ++c) a.Cycle();
  for (int c = 0; c < 3000; ++c) b.Cycle();
  EXPECT_EQ(a.ArchViewHash(), b.ArchViewHash());
}

TEST(Core, DumpPipelineRendersEveryStage) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  Core core(CoreConfig{}, prog);
  for (int c = 0; c < 500; ++c) core.Cycle();
  std::ostringstream os;
  core.DumpPipeline(os);
  const std::string out = os.str();
  for (const char* marker : {"fetch", "decode1", "decode2", "sched", "ports",
                             "exec", "lsq", "rob", "rename", "cycle"})
    EXPECT_NE(out.find(marker), std::string::npos) << marker;
}

TEST(Core, StateHashCoversOutput) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), 1, true);
  Core core(CoreConfig{}, prog);
  std::uint64_t before = core.StateHash();
  for (int c = 0; c < 300000 && core.output().empty(); ++c) core.Cycle();
  ASSERT_FALSE(core.output().empty());
  EXPECT_NE(core.StateHash(), before);
}

}  // namespace
}  // namespace tfsim
