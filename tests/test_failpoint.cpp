// The failpoint chaos engine (util/failpoint.h) and the graceful-degradation
// contracts it exists to prove: every durability seam (atomic writes, cache
// stores, checkpoint flushes, JSONL sinks) absorbs injected I/O failure
// without changing trial records or aborting the campaign.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include "inject/cache.h"
#include "inject/campaign.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace tfsim {
namespace {

namespace fs = std::filesystem;

// Every test leaves the global registry clean for the rest of the suite.
struct FailpointGuard {
  FailpointGuard() { fail::Reset(); }
  ~FailpointGuard() { fail::Reset(); }
};

class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const std::string& name)
      : dir_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(dir_);
    ::setenv("TFI_CACHE_DIR", dir_.c_str(), 1);
  }
  ~ScopedCacheDir() {
    fs::remove_all(dir_);
    ::unsetenv("TFI_CACHE_DIR");
  }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

CampaignSpec SmallCampaign(int trials) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = trials;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;
  return spec;
}

CampaignOptions QuietLive() {
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  return opt;
}

void ExpectSameRecords(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(a.trials[i].mode, b.trials[i].mode) << "trial " << i;
    EXPECT_EQ(a.trials[i].cat, b.trials[i].cat) << "trial " << i;
    EXPECT_EQ(a.trials[i].storage, b.trials[i].storage) << "trial " << i;
    EXPECT_EQ(a.trials[i].cycles, b.trials[i].cycles) << "trial " << i;
    EXPECT_EQ(a.trials[i].valid_instrs, b.trials[i].valid_instrs);
    EXPECT_EQ(a.trials[i].inflight, b.trials[i].inflight);
  }
}

TEST(Failpoint, DisarmedProbeNeverFires) {
  FailpointGuard guard;
  EXPECT_FALSE(fail::FailHere("no.such.site"));
  EXPECT_EQ(fail::HitCount("no.such.site"), 0u);
}

TEST(Failpoint, ErrorPolicyCadenceAndCounters) {
  FailpointGuard guard;
  fail::Configure("t.site", {fail::Action::kError, /*one_in=*/3});
  // First hit always fires, then every third.
  EXPECT_TRUE(fail::FailHere("t.site"));
  EXPECT_FALSE(fail::FailHere("t.site"));
  EXPECT_FALSE(fail::FailHere("t.site"));
  EXPECT_TRUE(fail::FailHere("t.site"));
  EXPECT_FALSE(fail::FailHere("t.site"));
  EXPECT_EQ(fail::HitCount("t.site"), 5u);
  EXPECT_EQ(fail::FireCount("t.site"), 2u);
  // Reconfiguring with kOff clears the site.
  fail::Configure("t.site", {});
  EXPECT_FALSE(fail::FailHere("t.site"));
}

TEST(Failpoint, LimitStopsFiring) {
  FailpointGuard guard;
  fail::Configure("t.limited", {fail::Action::kError, 1, 0, /*limit=*/2});
  EXPECT_TRUE(fail::FailHere("t.limited"));
  EXPECT_TRUE(fail::FailHere("t.limited"));
  EXPECT_FALSE(fail::FailHere("t.limited"));
  EXPECT_FALSE(fail::FailHere("t.limited"));
  EXPECT_EQ(fail::FireCount("t.limited"), 2u);
}

TEST(Failpoint, ThrowPolicyRaisesFailpointError) {
  FailpointGuard guard;
  fail::Configure("t.throws", {fail::Action::kThrow});
  EXPECT_THROW(fail::FailHere("t.throws"), fail::FailpointError);
}

TEST(Failpoint, DelayPolicySleepsAndReturnsFalse) {
  FailpointGuard guard;
  fail::Configure("t.slow", {fail::Action::kDelay, 1, /*delay_us=*/20000});
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(fail::FailHere("t.slow"));
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_GE(us, 15000);
}

TEST(Failpoint, PrefixPatternsMatchAndExactWins) {
  FailpointGuard guard;
  fail::Configure("grp.*", {fail::Action::kError});
  fail::Configure("grp.exempt", {fail::Action::kDelay, 1, 0});
  EXPECT_TRUE(fail::FailHere("grp.a"));
  EXPECT_TRUE(fail::FailHere("grp.b.c"));
  EXPECT_FALSE(fail::FailHere("grp.exempt"));  // exact beats prefix
  EXPECT_FALSE(fail::FailHere("other.a"));
  EXPECT_EQ(fail::HitCount("grp.*"), 2u);
}

TEST(Failpoint, SpecParsingRoundTrip) {
  FailpointGuard guard;
  std::string err;
  ASSERT_TRUE(fail::ConfigureFromSpec(
      "a.one=error@1in2;b.two=throw#1,c.three=delay:500", &err))
      << err;
  EXPECT_TRUE(fail::FailHere("a.one"));
  EXPECT_FALSE(fail::FailHere("a.one"));
  EXPECT_TRUE(fail::FailHere("a.one"));
  EXPECT_THROW(fail::FailHere("b.two"), fail::FailpointError);
  EXPECT_FALSE(fail::FailHere("b.two"));  // #1 spent
  EXPECT_FALSE(fail::FailHere("c.three"));
}

TEST(Failpoint, SpecParsingRejectsMalformedInput) {
  FailpointGuard guard;
  std::string err;
  EXPECT_FALSE(fail::ConfigureFromSpec("nosuchaction=boom", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(fail::ConfigureFromSpec("missing.action", &err));
  EXPECT_FALSE(fail::ConfigureFromSpec("x=error@2in3", &err));
  EXPECT_FALSE(fail::ConfigureFromSpec("x=error@1in0", &err));
  EXPECT_FALSE(fail::ConfigureFromSpec("=error", &err));
}

TEST(Failpoint, ConfigureFromEnvIsTheOptIn) {
  FailpointGuard guard;
  ::setenv("TFI_FAILPOINTS", "env.site=error", 1);
  // Merely setting the env arms nothing...
  EXPECT_FALSE(fail::FailHere("env.site"));
  // ...the explicit call does.
  EXPECT_EQ(fail::ConfigureFromEnv(), 1);
  EXPECT_TRUE(fail::FailHere("env.site"));
  ::unsetenv("TFI_FAILPOINTS");
  EXPECT_EQ(fail::ConfigureFromEnv(), 0);
}

TEST(Failpoint, AtomicWriteSeamErrorReturns) {
  FailpointGuard guard;
  fail::Configure("fs.atomic_write", {fail::Action::kError});
  const fs::path path = fs::temp_directory_path() / "tfi_fp_atomic.txt";
  std::string error;
  EXPECT_FALSE(AtomicWriteFile(path, "payload", &error));
  EXPECT_NE(error.find("failpoint"), std::string::npos);
  EXPECT_FALSE(fs::exists(path));
  fail::Reset();
  ASSERT_TRUE(AtomicWriteFile(path, "payload", &error)) << error;
  fs::remove(path);
}

TEST(Failpoint, CacheStoreRetriesAbsorbTransientFailure) {
  FailpointGuard guard;
  ScopedCacheDir cache("tfi_fp_cache_retry");
  const CampaignSpec spec = SmallCampaign(4);
  CampaignResult r;
  r.spec = spec;
  r.trials.resize(4);

  // Every other attempt fails: attempt 1 hits the failpoint, the backoff
  // retry succeeds — no failure surfaces.
  obs::MetricsRegistry metrics;
  fail::Configure("cache.store", {fail::Action::kError, /*one_in=*/2});
  EXPECT_TRUE(StoreCachedCampaign(r, &metrics));
  EXPECT_EQ(metrics.GetCounter("campaign.cache.store_failures").value(), 0u);
  EXPECT_TRUE(LoadCachedCampaign(spec).has_value());
  EXPECT_GE(fail::FireCount("cache.store"), 1u);

  // A persistent failure exhausts all attempts and is counted.
  fail::Configure("cache.store", {fail::Action::kError});
  EXPECT_FALSE(StoreCachedCampaign(r, &metrics));
  EXPECT_EQ(metrics.GetCounter("campaign.cache.store_failures").value(), 1u);
}

TEST(Failpoint, CacheAndCheckpointLoadFailuresDegradeToMiss) {
  FailpointGuard guard;
  ScopedCacheDir cache("tfi_fp_cache_load");
  const CampaignSpec spec = SmallCampaign(4);
  CampaignResult r;
  r.spec = spec;
  r.trials.resize(4);
  ASSERT_TRUE(StoreCachedCampaign(r));
  ASSERT_TRUE(StoreCampaignCheckpoint(spec, r.trials));

  fail::Configure("cache.load", {fail::Action::kError});
  fail::Configure("ckpt.load", {fail::Action::kError});
  EXPECT_FALSE(LoadCachedCampaign(spec).has_value());
  EXPECT_FALSE(LoadCampaignCheckpoint(spec).has_value());
  fail::Reset();
  EXPECT_TRUE(LoadCachedCampaign(spec).has_value());
  EXPECT_TRUE(LoadCampaignCheckpoint(spec).has_value());
}

TEST(Failpoint, CampaignSurvivesDurabilityChaosWithIdenticalRecords) {
  FailpointGuard guard;
  ScopedCacheDir cache("tfi_fp_campaign_chaos");
  const CampaignSpec spec = SmallCampaign(10);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  // Arm every durability seam with intermittent failure, then run with the
  // cache and checkpointing on: the campaign must complete with records
  // byte-identical to the clean run.
  ASSERT_TRUE(fail::ConfigureFromSpec(
      "fs.atomic_write=error@1in3;cache.load=error;ckpt.load=error;"
      "cache.store=error@1in2;ckpt.store=error@1in2"));
  CampaignOptions opt = QuietLive();
  opt.use_cache = true;
  opt.jobs = 4;
  opt.checkpoint_every = 3;
  const CampaignResult chaotic = RunCampaign(spec, opt);
  EXPECT_FALSE(chaotic.interrupted);
  ExpectSameRecords(chaotic, reference);
}

TEST(Failpoint, CheckpointFlushFailureDisablesJournalingOnce) {
  FailpointGuard guard;
  ScopedCacheDir cache("tfi_fp_ckpt_disable");
  const CampaignSpec spec = SmallCampaign(9);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  // Count kCheckpointDisabled and kCheckpointFlush events.
  struct CountingSink : obs::EventSink {
    std::atomic<int> disabled{0};
    std::atomic<int> flushes{0};
    void OnEvent(const obs::Event& e) override {
      if (e.kind == obs::EventKind::kCheckpointDisabled) ++disabled;
      if (e.kind == obs::EventKind::kCheckpointFlush) ++flushes;
    }
  } sink;
  obs::EventJournal journal;
  journal.AddSink(&sink);

  fail::Configure("ckpt.store", {fail::Action::kError});
  CampaignOptions opt = QuietLive();
  opt.jobs = 2;
  opt.checkpoint_every = 2;
  opt.obs.events = &journal;
  const CampaignResult r = RunCampaign(spec, opt);
  journal.Flush();
  journal.RemoveSink(&sink);

  // Checkpointing failed, was disabled exactly once, and the campaign
  // finished with byte-identical records regardless.
  EXPECT_EQ(sink.disabled.load(), 1);
  EXPECT_EQ(sink.flushes.load(), 0);
  EXPECT_FALSE(r.interrupted);
  ExpectSameRecords(r, reference);
  EXPECT_FALSE(fs::exists(CampaignCheckpointPath(spec)));
}

TEST(Failpoint, JsonlSinkDisablesItselfOnWriteFailure) {
  FailpointGuard guard;
  // The sink hits the write failpoint on its first event, marks the stream
  // failed, and silences itself; later events don't reach the stream.
  fail::Configure("events.jsonl.write", {fail::Action::kError, 1, 0,
                                         /*limit=*/1});
  std::ostringstream os;
  obs::JsonlEventSink sink(os);
  const std::string header = os.str();
  EXPECT_FALSE(header.empty());

  obs::Event e;
  e.kind = obs::EventKind::kGoldenDone;
  sink.OnEvent(e);
  EXPECT_TRUE(sink.disabled());
  const std::string after_first = os.str();
  sink.OnEvent(e);
  EXPECT_EQ(os.str(), after_first);  // nothing further written
}

TEST(EventJournal, OverflowDropsOldestAndCounts) {
  // A deliberately slow sink behind a tiny queue: Emit never blocks, the
  // oldest events are shed, and the loss is counted.
  struct SlowSink : obs::EventSink {
    std::atomic<int> seen{0};
    void OnEvent(const obs::Event&) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++seen;
    }
  } sink;
  obs::EventJournal journal(/*capacity=*/8);
  journal.AddSink(&sink);
  constexpr int kEmits = 200;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEmits; ++i) {
    obs::Event e;
    e.kind = obs::EventKind::kTrialDone;
    e.trial = i;
    journal.Emit(std::move(e));
  }
  const auto emit_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  // Emitting 200 events against a ~400ms-per-200 sink finished without
  // blocking on the sink (generous bound: well under the drain time).
  EXPECT_LT(emit_ms, 200);
  journal.Flush();
  journal.RemoveSink(&sink);
  EXPECT_EQ(journal.emitted(), static_cast<std::uint64_t>(kEmits));
  EXPECT_GT(journal.dropped(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(sink.seen.load()) + journal.dropped(),
            static_cast<std::uint64_t>(kEmits));
}

TEST(EventJournal, CampaignFinishFooterCarriesDropCount) {
  // The campaign_finish event self-reports the run's telemetry loss.
  obs::Event e;
  e.kind = obs::EventKind::kCampaignFinish;
  e.value = 42;
  e.dropped = 7;
  const std::string json = obs::RenderEventJson(e);
  EXPECT_NE(json.find("\"events_dropped\":7"), std::string::npos);
}

}  // namespace
}  // namespace tfsim
