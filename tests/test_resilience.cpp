// The resilient execution layer: CRC32 + atomic file primitives, the v2
// checksummed results cache (with v1 back-compat and bit-exact doubles),
// trial quarantine, and checkpoint/resume byte-identity.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "inject/cache.h"
#include "inject/campaign.h"
#include "obs/metrics.h"
#include "util/cancel.h"
#include "util/checksum.h"
#include "util/fs.h"

namespace tfsim {
namespace {

namespace fs = std::filesystem;

// Scoped TFI_CACHE_DIR override pointing at a fresh temp directory.
class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const std::string& name)
      : dir_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(dir_);
    ::setenv("TFI_CACHE_DIR", dir_.c_str(), 1);
  }
  ~ScopedCacheDir() {
    fs::remove_all(dir_);
    ::unsetenv("TFI_CACHE_DIR");
  }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

CampaignSpec SmallCampaign(int trials) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = trials;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;
  return spec;
}

CampaignOptions QuietLive() {
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  return opt;
}

// Expects `a` to hold exactly `n` records matching the first `n` of `b`.
void ExpectSameRecords(const CampaignResult& a, const CampaignResult& b,
                       std::size_t n) {
  ASSERT_EQ(a.trials.size(), n);
  ASSERT_GE(b.trials.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(a.trials[i].mode, b.trials[i].mode) << "trial " << i;
    EXPECT_EQ(a.trials[i].cat, b.trials[i].cat) << "trial " << i;
    EXPECT_EQ(a.trials[i].storage, b.trials[i].storage) << "trial " << i;
    EXPECT_EQ(a.trials[i].cycles, b.trials[i].cycles) << "trial " << i;
    EXPECT_EQ(a.trials[i].valid_instrs, b.trials[i].valid_instrs);
    EXPECT_EQ(a.trials[i].inflight, b.trials[i].inflight);
  }
}

// A synthetic result exercising every serialized field, including doubles
// that do not round-trip at default stream precision.
CampaignResult AwkwardResult(const CampaignSpec& spec) {
  CampaignResult r;
  r.spec = spec;
  r.golden_ipc = 1.0 / 3.0;
  r.golden_bp_accuracy = 0.9428090415820634;  // irrational-ish, 17 digits
  r.golden_dcache_misses = 123456789;
  for (int c = 0; c < kNumStateCats; ++c) {
    r.inventory[c].latch_bits = 1000 + c;
    r.inventory[c].ram_bits = 7 * c;
  }
  r.trials.resize(static_cast<std::size_t>(spec.trials));
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    TrialRecord& t = r.trials[i];
    t.outcome = static_cast<Outcome>(i % kNumOutcomes);
    t.mode = static_cast<FailureMode>(i % kNumFailureModes);
    t.cat = static_cast<StateCat>(i % kNumStateCats);
    t.storage = static_cast<Storage>(i % 2);
    t.cycles = static_cast<std::uint32_t>(17 * i + 3);
    t.valid_instrs = static_cast<std::uint32_t>(5 * i);
    t.inflight = static_cast<std::uint32_t>(i);
  }
  return r;
}

std::string CachePath(const CampaignSpec& spec) {
  return (fs::path(CacheDir()) / (spec.CacheKey() + ".txt")).string();
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(Checksum, Crc32KnownVectorAndIncremental) {
  // The canonical CRC-32 check value (zlib, PNG, IEEE 802.3).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Incremental application over a split equals one pass over the whole.
  const std::uint32_t part = Crc32("12345");
  EXPECT_EQ(Crc32("6789", part), Crc32("123456789"));
  // Sensitivity: one flipped bit changes the CRC.
  EXPECT_NE(Crc32("123456788"), Crc32("123456789"));
}

TEST(AtomicWrite, WritesAndReplaces) {
  const fs::path path = fs::temp_directory_path() / "tfi_atomic_write.txt";
  fs::remove(path);
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, "first", &error)) << error;
  EXPECT_EQ(SlurpFile(path.string()), "first");
  ASSERT_TRUE(AtomicWriteFile(path, "second longer contents", &error));
  EXPECT_EQ(SlurpFile(path.string()), "second longer contents");
  // No temporaries left behind.
  int siblings = 0;
  for (const auto& e : fs::directory_iterator(path.parent_path()))
    if (e.path().filename().string().rfind("tfi_atomic_write.txt", 0) == 0)
      ++siblings;
  EXPECT_EQ(siblings, 1);
  fs::remove(path);
  // A missing parent directory fails cleanly instead of crashing.
  EXPECT_FALSE(AtomicWriteFile(
      fs::temp_directory_path() / "tfi_no_such_dir" / "x.txt", "y", &error));
  EXPECT_FALSE(error.empty());
}

TEST(CacheV2, RoundTripsEveryFieldBitExactly) {
  ScopedCacheDir cache("tfi_test_cache_v2");
  const CampaignSpec spec = SmallCampaign(11);
  const CampaignResult stored = AwkwardResult(spec);
  ASSERT_TRUE(StoreCachedCampaign(stored));

  const auto loaded = LoadCachedCampaign(spec);
  ASSERT_TRUE(loaded.has_value());
  // Doubles survive bit-exactly (max_digits10 serialization).
  EXPECT_EQ(loaded->golden_ipc, stored.golden_ipc);
  EXPECT_EQ(loaded->golden_bp_accuracy, stored.golden_bp_accuracy);
  EXPECT_EQ(loaded->golden_dcache_misses, stored.golden_dcache_misses);
  for (int c = 0; c < kNumStateCats; ++c) {
    EXPECT_EQ(loaded->inventory[c].latch_bits, stored.inventory[c].latch_bits);
    EXPECT_EQ(loaded->inventory[c].ram_bits, stored.inventory[c].ram_bits);
  }
  ExpectSameRecords(*loaded, stored, stored.trials.size());
  // The quarantine index is rebuilt from the kTrialError records.
  std::size_t errors = 0;
  for (const auto& t : stored.trials)
    if (t.outcome == Outcome::kTrialError) ++errors;
  EXPECT_EQ(loaded->quarantined.size(), errors);
}

TEST(CacheV2, RejectsTamperedTruncatedAndPaddedFiles) {
  ScopedCacheDir cache("tfi_test_cache_tamper");
  const CampaignSpec spec = SmallCampaign(9);
  ASSERT_TRUE(StoreCachedCampaign(AwkwardResult(spec)));
  const std::string path = CachePath(spec);
  const std::string good = SlurpFile(path);
  ASSERT_TRUE(LoadCachedCampaign(spec).has_value());

  // Flip one payload byte: CRC mismatch.
  std::string tampered = good;
  tampered[good.size() - 2] ^= 0x01;
  WriteRaw(path, tampered);
  EXPECT_FALSE(LoadCachedCampaign(spec).has_value());

  // Truncate: declared length can't be read.
  WriteRaw(path, good.substr(0, good.size() / 2));
  EXPECT_FALSE(LoadCachedCampaign(spec).has_value());

  // Trailing garbage: file longer than the declared payload.
  WriteRaw(path, good + "extra");
  EXPECT_FALSE(LoadCachedCampaign(spec).has_value());

  // Unknown magic.
  WriteRaw(path, "tfi-cache v9\n" + good);
  EXPECT_FALSE(LoadCachedCampaign(spec).has_value());

  // Empty file.
  WriteRaw(path, "");
  EXPECT_FALSE(LoadCachedCampaign(spec).has_value());

  // Restoring the original bytes restores the hit.
  WriteRaw(path, good);
  EXPECT_TRUE(LoadCachedCampaign(spec).has_value());
}

TEST(CacheV2, ReadsLegacyV1Files) {
  ScopedCacheDir cache("tfi_test_cache_v1");
  const CampaignSpec spec = SmallCampaign(3);
  const CampaignResult r = AwkwardResult(spec);

  // Write the file exactly as the v1 writer did: no checksum, default
  // stream precision for doubles.
  fs::create_directories(CacheDir());
  std::ostringstream os;
  os << "tfi-cache v1" << '\n' << r.trials.size() << '\n';
  for (int c = 0; c < kNumStateCats; ++c)
    os << r.inventory[c].latch_bits << ' ' << r.inventory[c].ram_bits << '\n';
  os << r.golden_ipc << ' ' << r.golden_bp_accuracy << ' '
     << r.golden_dcache_misses << '\n';
  for (const auto& t : r.trials)
    os << static_cast<int>(t.outcome) << ' ' << static_cast<int>(t.mode)
       << ' ' << static_cast<int>(t.cat) << ' '
       << static_cast<int>(t.storage) << ' ' << t.cycles << ' '
       << t.valid_instrs << ' ' << t.inflight << '\n';
  WriteRaw(CachePath(spec), os.str());

  const auto loaded = LoadCachedCampaign(spec);
  ASSERT_TRUE(loaded.has_value());
  ExpectSameRecords(*loaded, r, r.trials.size());
  // v1 doubles only promise default precision, not bit-exactness.
  EXPECT_NEAR(loaded->golden_ipc, r.golden_ipc, 1e-5);
}

TEST(CacheV2, StoreFailureIsCountedNotSilent) {
  // Point the cache "directory" at a regular file: create_directories and
  // the write both fail, and the failure is observable.
  const fs::path blocker = fs::temp_directory_path() / "tfi_cache_blocker";
  WriteRaw(blocker.string(), "not a directory");
  ::setenv("TFI_CACHE_DIR", blocker.c_str(), 1);

  obs::MetricsRegistry metrics;
  EXPECT_FALSE(StoreCachedCampaign(AwkwardResult(SmallCampaign(2)), &metrics));
  EXPECT_EQ(metrics.GetCounter("campaign.cache.store_failures").value(), 1u);
  EXPECT_FALSE(
      StoreCampaignCheckpoint(SmallCampaign(2), {}, &metrics));
  EXPECT_EQ(metrics.GetCounter("campaign.checkpoint.store_failures").value(),
            1u);

  ::unsetenv("TFI_CACHE_DIR");
  fs::remove(blocker);
}

TEST(Quarantine, ThrowingTrialDoesNotAbortTheCampaign) {
  const CampaignSpec spec = SmallCampaign(10);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  obs::MetricsRegistry metrics;
  CampaignOptions opt = QuietLive();
  opt.jobs = 4;
  opt.retries = 1;
  opt.obs.sinks.metrics = &metrics;
  opt.trial_fault_hook = [](std::size_t i) {
    if (i == 3) throw std::runtime_error("deliberate trial fault");
  };
  const CampaignResult r = RunCampaign(spec, opt);

  ASSERT_EQ(r.trials.size(), 10u);
  EXPECT_FALSE(r.interrupted);
  EXPECT_EQ(r.trials[3].outcome, Outcome::kTrialError);
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0].index, 3u);
  EXPECT_EQ(r.quarantined[0].message, "deliberate trial fault");
  EXPECT_EQ(metrics.GetCounter("campaign.trials.quarantined").value(), 1u);
  EXPECT_EQ(r.ByOutcome()[static_cast<int>(Outcome::kTrialError)], 1u);
  // Every other trial classified exactly as the clean run's.
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    if (i == 3) continue;
    EXPECT_EQ(r.trials[i].outcome, reference.trials[i].outcome) << i;
    EXPECT_EQ(r.trials[i].cycles, reference.trials[i].cycles) << i;
  }
}

TEST(Quarantine, TransientFailureIsAbsorbedByRetry) {
  const CampaignSpec spec = SmallCampaign(8);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  std::atomic<int> faults{0};
  CampaignOptions opt = QuietLive();
  opt.retries = 1;
  opt.trial_fault_hook = [&faults](std::size_t i) {
    // Throws on the first attempt of trial 2 only; the retry succeeds.
    if (i == 2 && faults.fetch_add(1) == 0)
      throw std::runtime_error("transient");
  };
  const CampaignResult r = RunCampaign(spec, opt);
  EXPECT_EQ(faults.load(), 2);  // first attempt + successful retry
  EXPECT_TRUE(r.quarantined.empty());
  ExpectSameRecords(r, reference, reference.trials.size());

  // With retries disabled the same transient quarantines the trial.
  std::atomic<int> faults2{0};
  CampaignOptions no_retry = QuietLive();
  no_retry.retries = 0;
  no_retry.trial_fault_hook = [&faults2](std::size_t i) {
    if (i == 2 && faults2.fetch_add(1) == 0)
      throw std::runtime_error("transient");
  };
  const CampaignResult q = RunCampaign(spec, no_retry);
  ASSERT_EQ(q.quarantined.size(), 1u);
  EXPECT_EQ(q.quarantined[0].index, 2u);
}

TEST(CheckpointResume, SeededJournalYieldsByteIdenticalRecords) {
  ScopedCacheDir cache("tfi_test_ckpt_seed");
  const CampaignSpec spec = SmallCampaign(12);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  // Seed a journal holding the first 7 records, as an interrupted run
  // would have left it, then resume at a different worker count.
  const std::vector<TrialRecord> prefix(reference.trials.begin(),
                                        reference.trials.begin() + 7);
  ASSERT_TRUE(StoreCampaignCheckpoint(spec, prefix));
  ASSERT_TRUE(LoadCampaignCheckpoint(spec).has_value());

  obs::MetricsRegistry metrics;
  CampaignOptions opt = QuietLive();
  opt.jobs = 3;
  opt.checkpoint_every = 4;
  opt.obs.sinks.metrics = &metrics;
  const CampaignResult resumed = RunCampaign(spec, opt);

  EXPECT_FALSE(resumed.interrupted);
  ExpectSameRecords(resumed, reference, reference.trials.size());
  EXPECT_EQ(resumed.spec.CacheKey(), reference.spec.CacheKey());
  EXPECT_EQ(metrics.GetCounter("campaign.checkpoint.resumed_trials").value(),
            7u);
  // Replayed campaign metrics cover all trials, not just the live ones.
  EXPECT_EQ(metrics.GetCounter("campaign.trials").value(), 12u);
  // The journal is consumed by the completed run.
  EXPECT_FALSE(fs::exists(CampaignCheckpointPath(spec)));
}

TEST(CheckpointResume, CancelledRunFlushesJournalAndResumesIdentically) {
  ScopedCacheDir cache("tfi_test_ckpt_cancel");
  const CampaignSpec spec = SmallCampaign(12);
  const CampaignResult reference = RunCampaign(spec, QuietLive());

  // Serial run cancelled from the hook of trial 4: that trial still
  // completes (drain semantics), then the loop stops — deterministically
  // five completed trials.
  CancellationToken cancel;
  CampaignOptions opt = QuietLive();
  opt.jobs = 1;
  opt.checkpoint_every = 3;
  opt.cancel = &cancel;
  opt.trial_fault_hook = [&cancel](std::size_t i) {
    if (i == 4) cancel.Request();
  };
  const CampaignResult partial = RunCampaign(spec, opt);
  EXPECT_TRUE(partial.interrupted);
  ExpectSameRecords(partial, reference, 5);

  const auto journal = LoadCampaignCheckpoint(spec);
  ASSERT_TRUE(journal.has_value());
  EXPECT_EQ(journal->size(), 5u);

  // A corrupt journal is rejected (clean re-run), a good one resumes.
  const std::string jpath = CampaignCheckpointPath(spec);
  const std::string good = SlurpFile(jpath);
  std::string bad = good;
  bad[bad.size() - 3] ^= 0x10;
  WriteRaw(jpath, bad);
  EXPECT_FALSE(LoadCampaignCheckpoint(spec).has_value());
  WriteRaw(jpath, good);

  CampaignOptions ropt = QuietLive();
  ropt.jobs = 4;
  ropt.checkpoint_every = 3;
  const CampaignResult resumed = RunCampaign(spec, ropt);
  EXPECT_FALSE(resumed.interrupted);
  ExpectSameRecords(resumed, reference, reference.trials.size());
  EXPECT_FALSE(fs::exists(jpath));
}

TEST(TornState, TruncatedCheckpointJournalIsDetectedAndRecovered) {
  // A power cut mid-rename can leave a journal truncated at any byte. Every
  // truncation point must be rejected (no partial resume from garbage), and
  // the campaign that rejected it must still produce byte-identical records
  // by running clean.
  ScopedCacheDir cache("tfi_test_torn_ckpt");
  const CampaignSpec spec = SmallCampaign(10);
  const CampaignResult reference = RunCampaign(spec, QuietLive());
  const std::vector<TrialRecord> prefix(reference.trials.begin(),
                                        reference.trials.begin() + 6);
  ASSERT_TRUE(StoreCampaignCheckpoint(spec, prefix));
  const std::string jpath = CampaignCheckpointPath(spec);
  const std::string good = SlurpFile(jpath);
  ASSERT_FALSE(good.empty());

  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, good.size() / 4,
                          good.size() / 2, good.size() - 1}) {
    WriteRaw(jpath, good.substr(0, cut));
    EXPECT_FALSE(LoadCampaignCheckpoint(spec).has_value()) << "cut=" << cut;
  }

  // With the torn journal still on disk, a full run detects the corruption,
  // starts clean, and matches the reference record-for-record.
  WriteRaw(jpath, good.substr(0, good.size() / 2));
  CampaignOptions opt = QuietLive();
  opt.jobs = 2;
  opt.checkpoint_every = 3;
  const CampaignResult recovered = RunCampaign(spec, opt);
  EXPECT_FALSE(recovered.interrupted);
  ExpectSameRecords(recovered, reference, reference.trials.size());
  // The completed run consumed (replaced, then removed) the torn journal.
  EXPECT_FALSE(fs::exists(jpath));
}

TEST(TornState, HalfWrittenCacheTempFilesAreIgnored) {
  // AtomicWriteFile writes to "<name>.tmp.<pid>.<seq>" then renames. A crash
  // between the two leaves a stray temp file; it must never be read as the
  // cache entry, and a subsequent atomic write must succeed alongside it.
  ScopedCacheDir cache("tfi_test_torn_tmp");
  const CampaignSpec spec = SmallCampaign(7);
  const CampaignResult stored = AwkwardResult(spec);
  ASSERT_TRUE(StoreCachedCampaign(stored));
  const std::string path = CachePath(spec);

  // Plant torn temp siblings mimicking an interrupted writer.
  WriteRaw(path + ".tmp.12345.0", "torn half-written payload");
  WriteRaw(path + ".tmp.12345.1", SlurpFile(path).substr(0, 10));

  const auto loaded = LoadCachedCampaign(spec);
  ASSERT_TRUE(loaded.has_value());
  ExpectSameRecords(*loaded, stored, stored.trials.size());

  // Overwriting through the same path still lands atomically.
  ASSERT_TRUE(StoreCachedCampaign(stored));
  EXPECT_TRUE(LoadCachedCampaign(spec).has_value());

  // And a torn temp file where the REAL entry is missing is a plain miss,
  // not a crash or a partial read.
  fs::remove(path);
  EXPECT_FALSE(LoadCachedCampaign(spec).has_value());
}

}  // namespace
}  // namespace tfsim
