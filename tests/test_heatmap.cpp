// Per-field vulnerability heatmap: aggregation counts, the Figure 8
// category rollup ordering, deterministic exports, and the post-hoc
// BuildHeatmap join against a real campaign result.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "inject/campaign.h"
#include "inject/report.h"
#include "obs/heatmap.h"
#include "obs/json_writer.h"

namespace tfsim {
namespace {

using obs::VulnerabilityHeatmap;

VulnerabilityHeatmap::Sample MakeSample(const std::string& field, StateCat cat,
                                        Outcome outcome) {
  VulnerabilityHeatmap::Sample s;
  s.field = field;
  s.cat = cat;
  s.storage = Storage::kLatch;
  s.field_bits = 64;
  s.outcome = outcome;
  s.mode = outcome == Outcome::kSdc ? FailureMode::kMem
                                    : FailureMode::kNoFailure;
  s.cycles = 100;
  return s;
}

TEST(Heatmap, AggregatesPerFieldCounts) {
  VulnerabilityHeatmap hm;
  hm.Add(MakeSample("rob.valid", StateCat::kRobptr, Outcome::kSdc));
  hm.Add(MakeSample("rob.valid", StateCat::kRobptr, Outcome::kMicroArchMatch));
  hm.Add(MakeSample("rob.valid", StateCat::kRobptr, Outcome::kMicroArchMatch));
  hm.Add(MakeSample("iq.src1", StateCat::kQctrl, Outcome::kTerminated));

  EXPECT_EQ(hm.trials(), 4u);
  EXPECT_EQ(hm.failures(), 2u);  // one SDC + one Terminated
  ASSERT_EQ(hm.cells().size(), 2u);
  const auto& rob = hm.cells().at("rob.valid");
  EXPECT_EQ(rob.trials, 3u);
  EXPECT_EQ(rob.cat, StateCat::kRobptr);
  EXPECT_EQ(rob.bits, 64u);
  EXPECT_EQ(rob.outcomes[static_cast<int>(Outcome::kSdc)], 1u);
  EXPECT_EQ(rob.outcomes[static_cast<int>(Outcome::kMicroArchMatch)], 2u);
  EXPECT_EQ(rob.Failures(), 1u);
  EXPECT_EQ(rob.modes[static_cast<int>(FailureMode::kMem)], 1u);
}

TEST(Heatmap, LatencyHistogramJoinsTracedTrials) {
  VulnerabilityHeatmap hm;
  auto s = MakeSample("lsq.addr", StateCat::kAddr, Outcome::kSdc);
  s.arch_divergence_cycle = 70;  // bucket 1 at width 64
  s.first_spread_cycle = -1;     // traced, stayed local
  hm.Add(s);
  auto untraced = MakeSample("lsq.addr", StateCat::kAddr, Outcome::kSdc);
  hm.Add(untraced);  // kNotTraced sentinels: counted in neither n nor silent

  const auto& cell = hm.cells().at("lsq.addr");
  EXPECT_EQ(cell.arch_divergence.n, 1u);
  EXPECT_EQ(cell.arch_divergence.silent, 0u);
  EXPECT_EQ(cell.arch_divergence.sum, 70u);
  EXPECT_EQ(cell.arch_divergence.min, 70u);
  EXPECT_EQ(cell.arch_divergence.max, 70u);
  EXPECT_EQ(cell.arch_divergence.buckets[1], 1u);
  EXPECT_DOUBLE_EQ(cell.arch_divergence.Mean(), 70.0);
  EXPECT_EQ(cell.first_spread.n, 0u);
  EXPECT_EQ(cell.first_spread.silent, 1u);
}

TEST(Heatmap, CategoryContributionsOrderByFailuresThenName) {
  VulnerabilityHeatmap hm;
  // kRob: 2 failures; kLsq: 2 failures; kCtrl: 1 failure; kRegfile: 0.
  hm.Add(MakeSample("rob.a", StateCat::kRobptr, Outcome::kSdc));
  hm.Add(MakeSample("rob.b", StateCat::kRobptr, Outcome::kTerminated));
  hm.Add(MakeSample("lsq.a", StateCat::kAddr, Outcome::kSdc));
  hm.Add(MakeSample("lsq.b", StateCat::kAddr, Outcome::kSdc));
  hm.Add(MakeSample("ctrl.a", StateCat::kCtrl, Outcome::kTerminated));
  hm.Add(MakeSample("rf.a", StateCat::kRegfile, Outcome::kMicroArchMatch));

  const auto shares = hm.CategoryContributions();
  ASSERT_EQ(shares.size(), 4u);
  // Two failures each: tie broken by category name ascending.
  const std::string first = StateCatName(shares[0].cat);
  const std::string second = StateCatName(shares[1].cat);
  EXPECT_EQ(shares[0].failures, 2u);
  EXPECT_EQ(shares[1].failures, 2u);
  EXPECT_LT(first, second);
  EXPECT_EQ(shares[2].cat, StateCat::kCtrl);
  EXPECT_EQ(shares[2].failures, 1u);
  EXPECT_EQ(shares[3].cat, StateCat::kRegfile);
  EXPECT_EQ(shares[3].failures, 0u);
}

TEST(Heatmap, JsonExportIsValidAndDeterministic) {
  VulnerabilityHeatmap hm;
  hm.Add(MakeSample("rob.valid", StateCat::kRobptr, Outcome::kSdc));
  hm.Add(MakeSample("iq.src1", StateCat::kQctrl, Outcome::kGrayArea));

  std::ostringstream a, b;
  hm.WriteJson(a, "gzip", "2026-01-01T00:00:00Z");
  hm.WriteJson(b, "gzip", "2026-01-01T00:00:00Z");
  EXPECT_EQ(a.str(), b.str());
  std::string err;
  EXPECT_TRUE(obs::JsonLint(a.str(), &err)) << err;
  EXPECT_NE(a.str().find("\"schema_version\""), std::string::npos);
  EXPECT_NE(a.str().find("\"generated_at\":\"2026-01-01T00:00:00Z\""),
            std::string::npos);
  EXPECT_NE(a.str().find("\"workload\":\"gzip\""), std::string::npos);
  EXPECT_NE(a.str().find("\"fields\""), std::string::npos);
  EXPECT_NE(a.str().find("\"categories\""), std::string::npos);
  // Sorted cells: iq.src1 renders before rob.valid.
  EXPECT_LT(a.str().find("iq.src1"), a.str().find("rob.valid"));
}

TEST(Heatmap, CsvExportOneRowPerField) {
  VulnerabilityHeatmap hm;
  hm.Add(MakeSample("rob.valid", StateCat::kRobptr, Outcome::kSdc));
  hm.Add(MakeSample("iq.src1", StateCat::kQctrl, Outcome::kGrayArea));
  std::ostringstream os;
  hm.WriteCsv(os);
  std::istringstream lines(os.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 3u);  // header + 2 fields
  EXPECT_EQ(rows[0].substr(0, 6), "field,");
  EXPECT_EQ(rows[1].substr(0, 8), "iq.src1,");
  EXPECT_EQ(rows[2].substr(0, 10), "rob.valid,");
}

TEST(Heatmap, BuildHeatmapMatchesCampaignAggregates) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 40;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  opt.obs.collect_prop_traces = true;
  const CampaignResult r = RunCampaign(spec, opt);
  ASSERT_EQ(r.trials.size(), 40u);

  const VulnerabilityHeatmap hm = BuildHeatmap(r);
  EXPECT_EQ(hm.trials(), 40u);
  const auto o = r.ByOutcome();
  EXPECT_EQ(hm.failures(), o[static_cast<int>(Outcome::kSdc)] +
                               o[static_cast<int>(Outcome::kTerminated)]);

  // The category rollup agrees with the result's own per-category counts
  // (the Figure 8 data), category by category.
  for (const auto& share : hm.CategoryContributions()) {
    EXPECT_EQ(share.trials, r.TrialsForCat(share.cat))
        << StateCatName(share.cat);
    const auto by = r.ByOutcomeForCat(share.cat);
    EXPECT_EQ(share.failures, by[static_cast<int>(Outcome::kSdc)] +
                                  by[static_cast<int>(Outcome::kTerminated)])
        << StateCatName(share.cat);
  }

  // The rollup ordering is the canonical failures-desc, name-asc order.
  const auto shares = hm.CategoryContributions();
  const bool ordered = std::is_sorted(
      shares.begin(), shares.end(), [](const auto& a, const auto& b) {
        if (a.failures != b.failures) return a.failures > b.failures;
        return std::string(StateCatName(a.cat)) <
               std::string(StateCatName(b.cat));
      });
  EXPECT_TRUE(ordered);

  // Field cells agree with the trace-recorded injection sites trial by
  // trial (the traces carry the authoritative field names).
  ASSERT_EQ(r.prop_traces.size(), 40u);
  std::uint64_t traced_with_latency = 0;
  for (const auto& t : r.prop_traces) {
    ASSERT_TRUE(hm.cells().count(t.field)) << t.field;
    if (t.arch_divergence_cycle >= 0) ++traced_with_latency;
  }
  std::uint64_t heatmap_latency_n = 0;
  for (const auto& [name, cell] : hm.cells())
    heatmap_latency_n += cell.arch_divergence.n;
  EXPECT_EQ(heatmap_latency_n, traced_with_latency);

  // An aggregate (synthetic workload name) has no trial→spec mapping.
  EXPECT_THROW(BuildHeatmap(MergeResults({r, r})), std::out_of_range);
}

}  // namespace
}  // namespace tfsim
