#include <gtest/gtest.h>
#include <cstring>

#include "arch/functional_sim.h"
#include "isa/assemble.h"
#include "isa/isa.h"

namespace tfsim {
namespace {

std::uint32_t FirstWord(const Program& p) {
  std::uint32_t w;
  std::memcpy(&w, p.chunks.at(0).bytes.data(), 4);
  return w;
}

TEST(Assembler, BasicInstruction) {
  const Program p = Assemble("addq r1, r2, r3\n");
  EXPECT_EQ(FirstWord(p), EncodeR(Op::kAddq, 1, 2, 3));
}

TEST(Assembler, RegisterAliases) {
  const Program p = Assemble("addq v0, sp, ra\n");
  EXPECT_EQ(FirstWord(p), EncodeR(Op::kAddq, 0, 30, 26));
}

TEST(Assembler, ImmediateForm) {
  const Program p = Assemble("addqi r1, -5, r2\n");
  EXPECT_EQ(FirstWord(p), EncodeI(Op::kAddqi, 1, 2, -5));
}

TEST(Assembler, MemoryOperand) {
  const Program p = Assemble("ldq r1, 24(r2)\n");
  EXPECT_EQ(FirstWord(p), EncodeM(Op::kLdq, 1, 2, 24));
}

TEST(Assembler, MemoryOperandWithoutBase) {
  const Program p = Assemble("lda r1, 100\n");
  EXPECT_EQ(FirstWord(p), EncodeM(Op::kLda, 1, kZeroReg, 100));
}

TEST(Assembler, BranchToLabel) {
  const Program p = Assemble("top: nop\n beq r1, top\n");
  std::uint32_t w;
  std::memcpy(&w, p.chunks.at(0).bytes.data() + 4, 4);
  EXPECT_EQ(Decode(w).imm, -2);  // disp = (top - (pc+4)) / 4
}

TEST(Assembler, ForwardReference) {
  const Program p = Assemble("br done\n nop\n done: nop\n");
  EXPECT_EQ(Decode(FirstWord(p)).imm, 1);
}

TEST(Assembler, StartLabelSetsEntry) {
  const Program p = Assemble("nop\n_start: nop\n");
  EXPECT_EQ(p.entry, 0x1000u + 4u);
}

TEST(Assembler, DefaultEntryIsTextBase) {
  EXPECT_EQ(Assemble("nop\n").entry, 0x1000u);
}

TEST(Assembler, PseudoNopAndMov) {
  EXPECT_EQ(FirstWord(Assemble("nop\n")),
            EncodeR(Op::kBisq, kZeroReg, kZeroReg, kZeroReg));
  EXPECT_EQ(FirstWord(Assemble("mov r4, r5\n")),
            EncodeR(Op::kBisq, 4, kZeroReg, 5));
}

TEST(Assembler, LiExpandsToTwoInstructions) {
  const Program p = Assemble("li r1, 0x12345678\n");
  EXPECT_EQ(p.chunks.at(0).bytes.size(), 8u);
}

TEST(Assembler, LiProducesCorrectValue) {
  // ldah+lda covers [-0x80008000, 0x7FFF7FFF] (the signed-hi16 limit, as on
  // the real Alpha).
  for (std::int64_t v : {0L, 1L, -1L, 42L, 0x12345678L, -70000L, 0x7FFF7FFFL,
                         -2147483648L}) {
    const Program p =
        Assemble("li r1, " + std::to_string(v) + "\nhang: br hang\n");
    FunctionalSim sim(p);
    sim.Run(2);
    EXPECT_EQ(sim.state().Reg(1), static_cast<std::uint64_t>(v)) << v;
  }
}

TEST(Assembler, LaResolvesDataLabels) {
  const Program p = Assemble(R"(
      la r1, value
      ldq r2, 0(r1)
      hang: br hang
      .data
      value: .word 777
  )");
  FunctionalSim sim(p);
  sim.Run(3);
  EXPECT_EQ(sim.state().Reg(2), 777u);
}

TEST(Assembler, DataDirectives) {
  const Program p = Assemble(R"(
      .data
      a: .word 0x1122334455667788
      b: .long 0xAABBCCDD
      c: .byte 1, 2, 3
      d: .space 5
      e: .asciiz "hi\n"
      .align 8
      f: .word 9
  )");
  const auto& data = p.chunks.at(0);
  EXPECT_EQ(data.addr, 0x40000u);
  EXPECT_EQ(data.bytes[0], 0x88);  // little endian
  EXPECT_EQ(data.bytes[7], 0x11);
  EXPECT_EQ(data.bytes[8], 0xDD);
  EXPECT_EQ(p.symbols.at("c"), 0x40000u + 12);
  EXPECT_EQ(data.bytes[12], 1);
  EXPECT_EQ(data.bytes[20], 'h');
  EXPECT_EQ(data.bytes[22], '\n');
  EXPECT_EQ(data.bytes[23], 0);
  EXPECT_EQ(p.symbols.at("f") % 8, 0u);
}

TEST(Assembler, LabelArithmetic) {
  const Program p = Assemble(R"(
      la r1, tab+16
      hang: br hang
      .data
      tab: .space 32
  )");
  FunctionalSim sim(p);
  sim.Run(2);
  EXPECT_EQ(sim.state().Reg(1), p.symbols.at("tab") + 16);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = Assemble(
      "; full line comment\n"
      "# hash comment\n"
      "\n"
      "addq r1, r2, r3 ; trailing\n");
  EXPECT_EQ(p.chunks.at(0).bytes.size(), 4u);
}

TEST(Assembler, ErrorsAreReportedWithLineNumbers) {
  EXPECT_THROW(Assemble("bogus r1, r2\n"), std::runtime_error);
  EXPECT_THROW(Assemble("addq r1, r2\n"), std::runtime_error);       // arity
  EXPECT_THROW(Assemble("addqi r1, 99999, r2\n"), std::runtime_error);
  EXPECT_THROW(Assemble("addq r1, r2, r99\n"), std::runtime_error);
  EXPECT_THROW(Assemble("beq r1, nowhere\n"), std::runtime_error);
  EXPECT_THROW(Assemble("l: nop\nl: nop\n"), std::runtime_error);  // dup label
  EXPECT_THROW(Assemble(".align 3\n"), std::runtime_error);
}

TEST(Assembler, LiRejectsUnencodableValues) {
  EXPECT_THROW(Assemble("li r1, 2147483647\n"), std::runtime_error);
  EXPECT_THROW(Assemble("li r1, 0x100000000\n"), std::runtime_error);
}

TEST(Assembler, RetDefaultsToRaRegister) {
  EXPECT_EQ(FirstWord(Assemble("ret\n")), EncodeJ(Op::kRet, kZeroReg, 26));
}

TEST(Assembler, SyscallEncoding) {
  EXPECT_EQ(Decode(FirstWord(Assemble("syscall\n"))).cls,
            InsnClass::kSyscall);
}

}  // namespace
}  // namespace tfsim
