// The per-cycle invariant checker (src/check/): a fault-free machine must
// report zero violations on every workload; seeded corruptions of specific
// structures must be detected in the same cycle and assigned the right
// category; checked campaigns quarantine structural violations as Trial
// Error and bypass the results cache.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "check/invariants.h"
#include "inject/campaign.h"
#include "obs/metrics.h"
#include "obs/sinks.h"
#include "uarch/core.h"
#include "uarch/lsq.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

namespace fs = std::filesystem;
using check::InvariantChecker;
using check::InvariantKind;

// Builds a BitLocation for element/bit of a named registry field, so tests
// corrupt exactly the structure they mean to.
BitLocation LocateNamed(const StateRegistry& reg, const std::string& name,
                        std::size_t element, std::uint8_t bit) {
  const auto fields = reg.Fields();
  BitLocation loc;
  for (std::size_t fi = 0; fi < fields.size(); ++fi) {
    if (fields[fi].name != name) continue;
    loc.field_index = fi;
    loc.element = element;
    loc.bit = bit;
    loc.name = name;
    return loc;
  }
  ADD_FAILURE() << "no registry field named " << name;
  return loc;
}

// A core running a workload with the checker enabled, warmed into steady
// state (structures populated, zero violations so far).
struct CheckedRig {
  Program prog;
  Core core;

  explicit CheckedRig(const std::string& workload, int warm_cycles = 3000)
      : prog(BuildWorkload(WorkloadByName(workload), kCampaignIters)),
        core(MakeConfig(), prog) {
    for (int c = 0; c < warm_cycles; ++c) core.Cycle();
    EXPECT_EQ(core.invariant_checker()->total(), 0u)
        << "machine not clean after warmup";
  }

  static CoreConfig MakeConfig() {
    CoreConfig cfg;
    cfg.check_invariants = true;
    return cfg;
  }

  // Advances until pred() holds (the structure the test wants to corrupt has
  // a live entry); returns false if it never does within `max` cycles.
  template <typename Pred>
  bool AdvanceUntil(Pred pred, int max = 4000) {
    for (int c = 0; c < max; ++c) {
      if (pred()) return true;
      core.Cycle();
    }
    return pred();
  }
};

TEST(InvariantChecker, CleanRunEveryWorkloadZeroViolations) {
  CoreConfig cfg;
  cfg.check_invariants = true;
  for (const auto& w : AllWorkloads()) {
    const Program prog = BuildWorkload(w, kCampaignIters);
    Core core(cfg, prog);
    for (int c = 0; c < 4000; ++c) core.Cycle();
    EXPECT_EQ(core.invariant_checker()->total(), 0u) << w.name;
    EXPECT_GT(core.stats().retired, 0u) << w.name;
  }
}

TEST(InvariantChecker, FreeListCountFlipIsQueuePointers) {
  CheckedRig rig("gzip");
  rig.core.registry().FlipBit(
      LocateNamed(rig.core.registry(), "rename.sfl_count", 0, 0));
  InvariantChecker* chk = rig.core.invariant_checker();
  EXPECT_GT(chk->Check(rig.core), 0u);
  EXPECT_TRUE(chk->SawKind(InvariantKind::kQueuePointers));
}

TEST(InvariantChecker, RobCountFlipIsQueuePointers) {
  CheckedRig rig("parser");
  rig.core.registry().FlipBit(
      LocateNamed(rig.core.registry(), "rob.count", 0, 0));
  InvariantChecker* chk = rig.core.invariant_checker();
  EXPECT_GT(chk->Check(rig.core), 0u);
  EXPECT_TRUE(chk->SawKind(InvariantKind::kQueuePointers));
}

TEST(InvariantChecker, LiveRobOldpFlipIsPregConservation) {
  CheckedRig rig("gcc");
  const Rob& rob = rig.core.rob();
  std::uint64_t victim = ~0ULL;
  ASSERT_TRUE(rig.AdvanceUntil([&] {
    for (std::uint64_t age = 0; age < rob.Count(); ++age) {
      const std::uint64_t tag = (rob.Head() + age) % rob.entries();
      if (rob.has_dst.GetBit(tag)) {
        victim = tag;
        return true;
      }
    }
    return false;
  }));
  // Changing a live oldp from p to p^1 leaves p unnamed and p^1 named twice
  // across RAT + free list + ROB — conservation must flag it.
  rig.core.registry().FlipBit(
      LocateNamed(rig.core.registry(), "rob.oldp",
                  static_cast<std::size_t>(victim), 0));
  InvariantChecker* chk = rig.core.invariant_checker();
  EXPECT_GT(chk->Check(rig.core), 0u);
  EXPECT_TRUE(chk->SawKind(InvariantKind::kPregConservation));
}

TEST(InvariantChecker, SchedulerRobtagDoneFlipIsSchedulerRef) {
  CheckedRig rig("vortex");
  const Scheduler& sched = rig.core.scheduler();
  std::uint64_t robtag = ~0ULL;
  ASSERT_TRUE(rig.AdvanceUntil([&] {
    for (std::uint64_t si = 0; si < sched.entries(); ++si) {
      if (sched.valid.GetBit(si)) {
        robtag = sched.robtag.Get(si) % rig.core.rob().entries();
        return true;
      }
    }
    return false;
  }));
  // A valid scheduler entry must reference an incomplete ROB entry; marking
  // its target done breaks that reference.
  rig.core.registry().FlipBit(
      LocateNamed(rig.core.registry(), "rob.done",
                  static_cast<std::size_t>(robtag), 0));
  InvariantChecker* chk = rig.core.invariant_checker();
  EXPECT_GT(chk->Check(rig.core), 0u);
  EXPECT_TRUE(chk->SawKind(InvariantKind::kSchedulerRef));
}

TEST(InvariantChecker, LiveLoadQueueRobtagFlipIsLsqOrder) {
  CheckedRig rig("vortex");  // keeps in-flight loads live across cycles
  const Lsq& lsq = rig.core.lsq();
  std::uint64_t li = ~0ULL;
  ASSERT_TRUE(rig.AdvanceUntil([&] {
    for (std::uint64_t i = 0; i < lsq.lq_entries(); ++i) {
      if (lsq.lq_valid.GetBit(i) && lsq.LqContains(i)) {
        li = i;
        return true;
      }
    }
    return false;
  }));
  rig.core.registry().FlipBit(
      LocateNamed(rig.core.registry(), "lq.robtag",
                  static_cast<std::size_t>(li), 0));
  InvariantChecker* chk = rig.core.invariant_checker();
  EXPECT_GT(chk->Check(rig.core), 0u);
  EXPECT_TRUE(chk->SawKind(InvariantKind::kLsqOrder));
}

TEST(InvariantChecker, SpecRatHighBitFlipIsRenameRange) {
  CheckedRig rig("twolf");
  // Flipping bit 6 of a mapping in [16, 64) lands in [80, 128) — past the
  // 80-register physical file.
  std::uint64_t areg = ~0ULL;
  ASSERT_TRUE(rig.AdvanceUntil([&] {
    for (std::uint64_t a = 0; a < 32; ++a) {
      const std::uint64_t p = rig.core.rename_unit().ReadSpecRaw(a);
      if (p >= 16 && p < 64) {
        areg = a;
        return true;
      }
    }
    return false;
  }));
  rig.core.registry().FlipBit(
      LocateNamed(rig.core.registry(), "rename.specrat",
                  static_cast<std::size_t>(areg), 6));
  InvariantChecker* chk = rig.core.invariant_checker();
  EXPECT_GT(chk->Check(rig.core), 0u);
  EXPECT_TRUE(chk->SawKind(InvariantKind::kRenameRange));
}

TEST(InvariantChecker, DetectionIsSameCycleAndCounted) {
  obs::MetricsRegistry metrics;
  obs::ObsSinks sinks;
  sinks.metrics = &metrics;

  CoreConfig cfg;
  cfg.check_invariants = true;
  const Program prog = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  Core core(cfg, prog);
  core.AttachObs(&sinks);
  for (int c = 0; c < 3000; ++c) core.Cycle();
  ASSERT_EQ(core.invariant_checker()->total(), 0u);

  core.registry().FlipBit(LocateNamed(core.registry(), "rob.count", 0, 0));
  core.Cycle();  // the very next cycle boundary must already report it

  const InvariantChecker* chk = core.invariant_checker();
  ASSERT_GT(chk->total(), 0u);
  EXPECT_TRUE(chk->SawKind(InvariantKind::kQueuePointers));
  EXPECT_EQ(chk->violations().front().cycle, core.stats().cycles);
  EXPECT_GE(metrics.GetCounter("check.violations.queue_pointers").value(),
            1u);
}

// --- checked campaigns -----------------------------------------------------

class ScopedCacheDir {
 public:
  explicit ScopedCacheDir(const std::string& name)
      : dir_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(dir_);
    ::setenv("TFI_CACHE_DIR", dir_.c_str(), 1);
  }
  ~ScopedCacheDir() {
    fs::remove_all(dir_);
    ::unsetenv("TFI_CACHE_DIR");
  }

 private:
  std::string dir_;
};

CampaignSpec SmallLatchCampaign() {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 120;
  spec.include_ram = false;  // latch faults hit queue-control state often
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 3000;
  spec.golden.slack = 800;
  return spec;
}

TEST(CheckedCampaign, QuarantinesStructuralViolationsAndBypassesCache) {
  ScopedCacheDir cache("tfi_test_checked_campaign");
  const CampaignSpec spec = SmallLatchCampaign();

  obs::MetricsRegistry metrics;
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = true;  // must be *bypassed*, not just cold
  opt.jobs = 2;
  opt.check_invariants = true;
  opt.obs.sinks.metrics = &metrics;
  opt.obs.collect_prop_traces = true;
  const CampaignResult r = RunCampaign(spec, opt);

  // Latch campaigns hit head/tail/count and pointer state frequently; this
  // seed deterministically quarantines at least one trial.
  ASSERT_FALSE(r.quarantined.empty());
  for (const QuarantinedTrial& q : r.quarantined) {
    EXPECT_EQ(r.trials[q.index].outcome, Outcome::kTrialError);
    EXPECT_NE(q.message.find("invariant violation"), std::string::npos)
        << q.message;
    EXPECT_GT(r.prop_traces[q.index].invariant_violations, 0u);
    EXPECT_FALSE(r.prop_traces[q.index].first_violation_kind.empty());
  }
  EXPECT_EQ(metrics.GetCounter("campaign.trials.quarantined").value(),
            r.quarantined.size());
  std::uint64_t kinds_sum = 0;
  for (int k = 0; k < check::kNumInvariantKinds; ++k)
    kinds_sum += metrics
                     .GetCounter(std::string("check.violations.") +
                                 check::InvariantKindName(
                                     static_cast<InvariantKind>(k)))
                     .value();
  EXPECT_GT(kinds_sum, 0u);

  // Re-running the same checked spec must execute live again (no cache file
  // was stored, none is loaded) and reproduce the exact same records.
  obs::MetricsRegistry metrics2;
  CampaignOptions opt2;
  opt2.verbose = false;
  opt2.use_cache = true;
  opt2.check_invariants = true;
  opt2.obs.sinks.metrics = &metrics2;
  const CampaignResult r2 = RunCampaign(spec, opt2);
  EXPECT_EQ(metrics2.GetCounter("campaign.cache.hits").value(), 0u);
  ASSERT_EQ(r2.trials.size(), r.trials.size());
  for (std::size_t i = 0; i < r.trials.size(); ++i)
    EXPECT_EQ(r2.trials[i].outcome, r.trials[i].outcome) << "trial " << i;
  EXPECT_EQ(r2.quarantined.size(), r.quarantined.size());

  // The same spec unchecked classifies every trial normally — quarantine is
  // strictly opt-in debug behaviour.
  CampaignOptions unchecked;
  unchecked.verbose = false;
  unchecked.use_cache = false;
  const CampaignResult r3 = RunCampaign(spec, unchecked);
  EXPECT_TRUE(r3.quarantined.empty());
  ASSERT_EQ(r3.trials.size(), r.trials.size());
  // Non-quarantined trials classify identically with and without the
  // checker (observation never changes behaviour).
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    if (r.trials[i].outcome == Outcome::kTrialError) continue;
    EXPECT_EQ(r3.trials[i].outcome, r.trials[i].outcome) << "trial " << i;
  }
}

}  // namespace
}  // namespace tfsim
