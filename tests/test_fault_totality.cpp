// Property/fuzz tests: under arbitrary single- and multi-bit corruption the
// simulator must never crash, hang the host, or leave its incremental hash
// inconsistent — every behaviour must be defined. This is the foundation the
// whole methodology rests on.
#include <gtest/gtest.h>

#include "inject/golden.h"
#include "inject/trial.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, MultiBitCorruptionIsAlwaysDefined) {
  static const char* kTargets[] = {"vortex", "mcf", "gap", "bzip2"};
  const Program prog = BuildWorkload(
      WorkloadByName(kTargets[GetParam() % 4]), kCampaignIters);
  Core core(CoreConfig{}, prog);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  for (int c = 0; c < 4000; ++c) core.Cycle();

  // Pepper the machine with bursts of random flips while it keeps running.
  const std::uint64_t bits = core.registry().InjectableBits(true);
  for (int burst = 0; burst < 20; ++burst) {
    const int flips = 1 + static_cast<int>(rng.NextBelow(8));
    for (int f = 0; f < flips; ++f)
      core.registry().FlipBit(
          core.registry().LocateBit(rng.NextBelow(bits), true));
    for (int c = 0; c < 150; ++c) core.Cycle();
    // Hash stays consistent with a full recompute.
    ASSERT_EQ(core.registry().Hash(), core.registry().RecomputeHash());
    if (core.halted_exception() != Exception::kNone || core.itlb_miss())
      return;  // halting on an exception is a perfectly defined outcome
  }
}

INSTANTIATE_TEST_SUITE_P(Bursts, FuzzSeed, ::testing::Range(0, 12));

TEST(FaultTotality, ProtectedMachineSurvivesCorruptionBursts) {
  CoreConfig cfg;
  cfg.protect = ProtectionConfig::All();
  const Program prog = BuildWorkload(WorkloadByName("parser"), kCampaignIters);
  Core core(cfg, prog);
  Rng rng(555);
  for (int c = 0; c < 4000; ++c) core.Cycle();
  const std::uint64_t bits = core.registry().InjectableBits(true);
  for (int burst = 0; burst < 30; ++burst) {
    core.registry().FlipBit(
        core.registry().LocateBit(rng.NextBelow(bits), true));
    for (int c = 0; c < 120; ++c) core.Cycle();
    ASSERT_EQ(core.registry().Hash(), core.registry().RecomputeHash());
    if (core.halted_exception() != Exception::kNone || core.itlb_miss())
      return;
  }
}

TEST(FaultTotality, DoubleFlipIsAlwaysAPerfectMatch) {
  // Flipping a bit and flipping it back before any cycle must restore the
  // exact machine hash — the injection machinery itself is side-effect free.
  const Program prog = BuildWorkload(WorkloadByName("gcc"), kCampaignIters);
  Core core(CoreConfig{}, prog);
  for (int c = 0; c < 3000; ++c) core.Cycle();
  const std::uint64_t h = core.StateHash();
  Rng rng(42);
  const std::uint64_t bits = core.registry().InjectableBits(true);
  for (int i = 0; i < 500; ++i) {
    const BitLocation loc =
        core.registry().LocateBit(rng.NextBelow(bits), true);
    core.registry().FlipBit(loc);
    core.registry().FlipBit(loc);
    ASSERT_EQ(core.StateHash(), h);
  }
}

TEST(FaultTotality, EveryTrialTerminatesWithAClassification) {
  GoldenSpec gs;
  gs.warmup = 12000;
  gs.points = 2;
  gs.spacing = 400;
  gs.window = 2500;
  gs.slack = 800;
  const Program prog = BuildWorkload(WorkloadByName("twolf"), kCampaignIters);
  const auto golden = RecordGolden(CoreConfig{}, prog, gs);
  TrialRunner runner(golden);
  Rng rng(321);
  const std::uint64_t bits = runner.core().registry().InjectableBits(true);
  for (int t = 0; t < 120; ++t) {
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(rng.NextBelow(2));
    ts.offset = rng.NextBelow(gs.offset_max);
    ts.bit_index = rng.NextBelow(bits);
    const TrialRecord r = runner.Run(ts).record;
    ASSERT_LE(static_cast<int>(r.outcome), 3);
    ASSERT_LE(r.cycles, gs.window);
    if (r.outcome == Outcome::kSdc || r.outcome == Outcome::kTerminated)
      ASSERT_NE(r.mode, FailureMode::kNoFailure);
    else
      ASSERT_EQ(r.mode, FailureMode::kNoFailure);
  }
}

}  // namespace
}  // namespace tfsim
