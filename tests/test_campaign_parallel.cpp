// The parallel campaign engine's defining property: `jobs` is an execution
// knob, never a results knob. Trial records, propagation traces and the
// deterministic portion of the metrics export must be byte-identical at
// every worker count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "inject/campaign.h"
#include "obs/metrics.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

GoldenSpec SmallSpec() {
  GoldenSpec gs;
  gs.warmup = 12000;
  gs.points = 3;
  gs.spacing = 500;
  gs.window = 4000;
  gs.slack = 1000;
  return gs;
}

CampaignSpec SmallCampaign(int trials) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = trials;
  spec.golden = SmallSpec();
  return spec;
}

// Runs the campaign live (no cache) with `jobs` workers, metrics attached
// and propagation tracing on.
CampaignResult RunLive(const CampaignSpec& spec, int jobs,
                   obs::MetricsRegistry* metrics) {
  CampaignOptions opt;
  opt.jobs = jobs;
  opt.verbose = false;
  opt.use_cache = false;
  opt.obs.sinks.metrics = metrics;
  opt.obs.collect_prop_traces = true;
  return RunCampaign(spec, opt);
}

std::string DeterministicJson(const obs::MetricsRegistry& m) {
  std::ostringstream os;
  m.WriteJson(os, /*include_timers=*/false);
  return os.str();
}

TEST(CampaignParallel, JobsDoNotChangeResultsOrMetrics) {
  const CampaignSpec spec = SmallCampaign(40);
  obs::MetricsRegistry m1, m4;
  const CampaignResult r1 = RunLive(spec, 1, &m1);
  const CampaignResult r4 = RunLive(spec, 4, &m4);

  ASSERT_EQ(r1.trials.size(), 40u);
  ASSERT_EQ(r1.trials.size(), r4.trials.size());
  for (std::size_t i = 0; i < r1.trials.size(); ++i) {
    EXPECT_EQ(r1.trials[i].outcome, r4.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(r1.trials[i].mode, r4.trials[i].mode) << "trial " << i;
    EXPECT_EQ(r1.trials[i].cat, r4.trials[i].cat) << "trial " << i;
    EXPECT_EQ(r1.trials[i].storage, r4.trials[i].storage) << "trial " << i;
    EXPECT_EQ(r1.trials[i].cycles, r4.trials[i].cycles) << "trial " << i;
    EXPECT_EQ(r1.trials[i].valid_instrs, r4.trials[i].valid_instrs);
    EXPECT_EQ(r1.trials[i].inflight, r4.trials[i].inflight);
  }
  EXPECT_EQ(r1.ByOutcome(), r4.ByOutcome());
  EXPECT_EQ(r1.ByFailureMode(), r4.ByFailureMode());
  EXPECT_EQ(r1.spec.CacheKey(), r4.spec.CacheKey());

  ASSERT_EQ(r1.prop_traces.size(), r4.prop_traces.size());
  for (std::size_t i = 0; i < r1.prop_traces.size(); ++i) {
    EXPECT_EQ(r1.prop_traces[i].field, r4.prop_traces[i].field);
    EXPECT_EQ(r1.prop_traces[i].first_spread_cycle,
              r4.prop_traces[i].first_spread_cycle);
    EXPECT_EQ(r1.prop_traces[i].arch_divergence_cycle,
              r4.prop_traces[i].arch_divergence_cycle);
    EXPECT_EQ(r1.prop_traces[i].cats_touched_mask,
              r4.prop_traces[i].cats_touched_mask);
  }

  // Counters and histograms (Welford summaries included) must match to the
  // byte; only wall-clock timers are excluded from the deterministic export.
  EXPECT_EQ(DeterministicJson(m1), DeterministicJson(m4));
}

TEST(CampaignParallel, TrialSpecsDependOnlyOnCampaignSpec) {
  const CampaignSpec spec = SmallCampaign(64);
  const Program prog = BuildWorkload(WorkloadByName(spec.workload), kCampaignIters);
  Core core(spec.core, prog);
  const std::uint64_t bits = core.registry().InjectableBits(spec.include_ram);

  const auto a = MakeTrialSpecs(spec, bits);
  const auto b = MakeTrialSpecs(spec, bits);
  ASSERT_EQ(a.size(), 64u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].checkpoint, b[i].checkpoint);
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].bit_index, b[i].bit_index);
  }
  // A different seed reshuffles the injections.
  CampaignSpec other = spec;
  other.seed ^= 0xdecade;
  const auto c = MakeTrialSpecs(other, bits);
  int diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    diff += a[i].bit_index != c[i].bit_index;
  EXPECT_GT(diff, 32);
}

TEST(CampaignParallel, CacheHitIsCountedAndReplaysCampaignCounters) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tfi_test_cache_par").string();
  ::setenv("TFI_CACHE_DIR", dir.c_str(), 1);
  std::filesystem::remove_all(dir);

  const CampaignSpec spec = SmallCampaign(15);
  CampaignOptions warm;
  warm.verbose = false;
  RunCampaign(spec, warm);  // populate the cache

  obs::MetricsRegistry metrics;
  CampaignOptions observed;
  observed.verbose = false;
  observed.obs.sinks.metrics = &metrics;
  const CampaignResult r = RunCampaign(spec, observed);
  EXPECT_EQ(r.trials.size(), 15u);
  EXPECT_EQ(metrics.GetCounter("campaign.cache.hits").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("campaign.cache.misses").value(), 0u);
  // The replayed counters match what a live run would have recorded.
  EXPECT_EQ(metrics.GetCounter("campaign.trials").value(), 15u);
  std::uint64_t by_outcome = 0;
  for (int o = 0; o < kNumOutcomes; ++o)
    by_outcome += metrics
                      .GetCounter(std::string("campaign.outcome.") +
                                  OutcomeName(static_cast<Outcome>(o)))
                      .value();
  EXPECT_EQ(by_outcome, 15u);

  std::filesystem::remove_all(dir);
  ::unsetenv("TFI_CACHE_DIR");
}

TEST(CampaignParallel, MergeAggregatesGoldenStatsAndChecksCompatibility) {
  CampaignResult a, b;
  a.trials.resize(3);
  a.golden_ipc = 2.0;
  a.golden_bp_accuracy = 0.9;
  a.golden_dcache_misses = 100;
  b.trials.resize(2);
  b.golden_ipc = 1.0;
  b.golden_bp_accuracy = 0.7;
  b.golden_dcache_misses = 50;
  const CampaignResult m = MergeResults({a, b});
  EXPECT_EQ(m.trials.size(), 5u);
  EXPECT_DOUBLE_EQ(m.golden_ipc, 1.5);
  EXPECT_DOUBLE_EQ(m.golden_bp_accuracy, 0.8);
  EXPECT_EQ(m.golden_dcache_misses, 150u);

  // Parts from differently protected machines refuse to aggregate.
  CampaignResult prot = b;
  prot.spec.core.protect = ProtectionConfig::All();
  EXPECT_THROW(MergeResults({a, prot}), std::invalid_argument);
  // So do parts from different injection populations or inventories.
  CampaignResult latches = b;
  latches.spec.include_ram = false;
  EXPECT_THROW(MergeResults({a, latches}), std::invalid_argument);
  CampaignResult other_inv = b;
  other_inv.inventory[0].latch_bits = 1;
  EXPECT_THROW(MergeResults({a, other_inv}), std::invalid_argument);
}

}  // namespace
}  // namespace tfsim
