#include <gtest/gtest.h>

#include "isa/isa.h"
#include "util/rng.h"

namespace tfsim {
namespace {

// --- encode/decode round trips ----------------------------------------------

struct RCase {
  Op op;
  InsnClass cls;
};

class RFormatTest : public ::testing::TestWithParam<RCase> {};

TEST_P(RFormatTest, RoundTrip) {
  const auto [op, cls] = GetParam();
  const std::uint32_t w = EncodeR(op, 3, 17, 29);
  const DecodedInst d = Decode(w);
  EXPECT_EQ(d.op, op);
  EXPECT_EQ(d.cls, cls);
  EXPECT_EQ(d.src1, 3);
  EXPECT_EQ(d.src2, 17);
  EXPECT_EQ(d.dst, 29);
}

INSTANTIATE_TEST_SUITE_P(
    AllRFormat, RFormatTest,
    ::testing::Values(
        RCase{Op::kAddq, InsnClass::kAlu}, RCase{Op::kSubq, InsnClass::kAlu},
        RCase{Op::kMulq, InsnClass::kAluComplex},
        RCase{Op::kDivq, InsnClass::kAluComplex},
        RCase{Op::kRemq, InsnClass::kAluComplex},
        RCase{Op::kUmulh, InsnClass::kAluComplex},
        RCase{Op::kAndq, InsnClass::kAlu}, RCase{Op::kBisq, InsnClass::kAlu},
        RCase{Op::kXorq, InsnClass::kAlu}, RCase{Op::kBicq, InsnClass::kAlu},
        RCase{Op::kSllq, InsnClass::kAlu}, RCase{Op::kSrlq, InsnClass::kAlu},
        RCase{Op::kSraq, InsnClass::kAlu}, RCase{Op::kCmpeq, InsnClass::kAlu},
        RCase{Op::kCmplt, InsnClass::kAlu}, RCase{Op::kCmple, InsnClass::kAlu},
        RCase{Op::kCmpult, InsnClass::kAlu},
        RCase{Op::kCmpule, InsnClass::kAlu},
        RCase{Op::kAddl, InsnClass::kAlu}, RCase{Op::kSubl, InsnClass::kAlu},
        RCase{Op::kMull, InsnClass::kAluComplex},
        RCase{Op::kSextb, InsnClass::kAlu}, RCase{Op::kSextl, InsnClass::kAlu},
        RCase{Op::kAddv, InsnClass::kAlu}, RCase{Op::kSubv, InsnClass::kAlu}));

class IFormatTest : public ::testing::TestWithParam<Op> {};

TEST_P(IFormatTest, RoundTripWithSignedImmediate) {
  for (std::int64_t imm : {0L, 1L, -1L, 32767L, -32768L, 12345L}) {
    const std::uint32_t w = EncodeI(GetParam(), 5, 9, imm);
    const DecodedInst d = Decode(w);
    EXPECT_EQ(d.op, GetParam());
    EXPECT_EQ(d.src1, 5);
    EXPECT_EQ(d.src2, kNoReg);
    EXPECT_EQ(d.dst, 9);
    EXPECT_EQ(d.imm, imm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIFormat, IFormatTest,
    ::testing::Values(Op::kAddqi, Op::kSubqi, Op::kMulqi, Op::kAndqi,
                      Op::kBisqi, Op::kXorqi, Op::kSllqi, Op::kSrlqi,
                      Op::kSraqi, Op::kCmpeqi, Op::kCmplti, Op::kCmplei,
                      Op::kCmpulti, Op::kCmpulei, Op::kAddli));

TEST(Decode, MemoryFormats) {
  for (const auto& [op, size, is_load] :
       {std::tuple{Op::kLdq, 8, true}, std::tuple{Op::kLdl, 4, true},
        std::tuple{Op::kLdbu, 1, true}, std::tuple{Op::kStq, 8, false},
        std::tuple{Op::kStl, 4, false}, std::tuple{Op::kStb, 1, false}}) {
    const std::uint32_t w = EncodeM(op, 7, 12, -40);
    const DecodedInst d = Decode(w);
    EXPECT_EQ(d.op, op);
    EXPECT_EQ(d.mem_size, size);
    EXPECT_EQ(d.imm, -40);
    EXPECT_EQ(d.src1, 12);  // base
    if (is_load) {
      EXPECT_EQ(d.cls, InsnClass::kLoad);
      EXPECT_EQ(d.dst, 7);
    } else {
      EXPECT_EQ(d.cls, InsnClass::kStore);
      EXPECT_EQ(d.src2, 7);  // data
      EXPECT_EQ(d.dst, kNoReg);
    }
  }
}

TEST(Decode, BranchDisplacements) {
  for (std::int64_t disp : {0L, 1L, -1L, 1000L, -1000L, (1L << 20) - 1,
                            -(1L << 20)}) {
    const DecodedInst d = Decode(EncodeB(Op::kBne, 4, disp));
    EXPECT_EQ(d.cls, InsnClass::kCondBranch);
    EXPECT_EQ(d.src1, 4);
    EXPECT_EQ(d.imm, disp) << "disp=" << disp;
  }
}

TEST(Decode, JumpFormats) {
  const DecodedInst jsr = Decode(EncodeJ(Op::kJsr, 26, 4));
  EXPECT_EQ(jsr.cls, InsnClass::kJsr);
  EXPECT_EQ(jsr.dst, 26);
  EXPECT_EQ(jsr.src1, 4);
  const DecodedInst ret = Decode(EncodeJ(Op::kRet, 31, 26));
  EXPECT_EQ(ret.cls, InsnClass::kRet);
  EXPECT_EQ(ret.dst, kNoReg);  // r31 destination dropped
}

TEST(Decode, WritesToR31AreDropped) {
  EXPECT_EQ(Decode(EncodeR(Op::kAddq, 1, 2, 31)).dst, kNoReg);
  EXPECT_EQ(Decode(EncodeM(Op::kLdq, 31, 2, 0)).dst, kNoReg);
  EXPECT_EQ(Decode(EncodeB(Op::kBr, 31, 4)).dst, kNoReg);
}

TEST(Decode, ZeroWordIsIllegal) {
  EXPECT_EQ(Decode(0).cls, InsnClass::kIllegal);
}

TEST(Decode, UnassignedOpcodesAreIllegal) {
  for (std::uint32_t op : {0x2Fu, 0x3Eu, 0x3Fu})
    EXPECT_EQ(Decode(op << 26).cls, InsnClass::kIllegal) << op;
}

TEST(Decode, TotalOverRandomWords) {
  // Decoding must be defined for every 32-bit pattern (fault injection can
  // produce any of them).
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const auto w = static_cast<std::uint32_t>(rng.Next());
    const DecodedInst d = Decode(w);
    EXPECT_LE(static_cast<int>(d.cls),
              static_cast<int>(InsnClass::kSyscall));
    if (d.src1 != kNoReg) {
      EXPECT_LT(d.src1, kNumArchRegs);
    }
    if (d.src2 != kNoReg) {
      EXPECT_LT(d.src2, kNumArchRegs);
    }
    if (d.dst != kNoReg) {
      EXPECT_LT(d.dst, kNumArchRegs);
    }
  }
}

TEST(Disassemble, CoversEveryOpcodeWithoutCrashing) {
  for (int op = 0; op < 64; ++op) {
    const std::uint32_t w = (static_cast<std::uint32_t>(op) << 26) | 0x12345;
    EXPECT_FALSE(Disassemble(w, 0x1000).empty());
  }
}

TEST(Disassemble, KnownForms) {
  EXPECT_EQ(Disassemble(EncodeR(Op::kAddq, 1, 2, 3), 0), "addq r1, r2, r3");
  EXPECT_EQ(Disassemble(EncodeM(Op::kLdq, 4, 5, 16), 0), "ldq r4, 16(r5)");
}

// --- field helpers -----------------------------------------------------------

TEST(Fields, Disp21SignExtension) {
  EXPECT_EQ(Disp21Field(0x000FFFFF), 0xFFFFF);
  EXPECT_EQ(Disp21Field(0x001FFFFF), -1);
  EXPECT_EQ(Disp21Field(0x00100000), -(1 << 20));
}

TEST(Fields, Imm16SignExtension) {
  EXPECT_EQ(Imm16Field(0x00007FFF), 32767);
  EXPECT_EQ(Imm16Field(0x00008000), -32768);
  EXPECT_EQ(Imm16Field(0x0000FFFF), -1);
}

}  // namespace
}  // namespace tfsim
