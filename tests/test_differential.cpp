// Differential testing: randomly generated programs executed on the
// detailed pipeline must retire exactly the functional simulator's
// instruction stream. This sweeps corners no hand-written workload hits
// (odd register reuse, dense dependency chains, mixed-size memory traffic,
// erratic branch patterns).
#include <gtest/gtest.h>

#include <sstream>

#include "arch/functional_sim.h"
#include "isa/assemble.h"
#include "uarch/core.h"
#include "util/rng.h"

namespace tfsim {
namespace {

// Generates a random but trap-free program: an outer loop over a body of
// random ALU ops, masked-address loads/stores into a private buffer, and
// data-dependent forward branches.
std::string GenerateProgram(std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream s;
  s << "_start:\n";
  s << "  li r9, " << 200 + rng.NextBelow(200) << "\n";  // outer counter
  s << "  la r10, buf\n";
  // Seed working registers r1..r8 with random 16-bit values.
  for (int r = 1; r <= 8; ++r)
    s << "  li r" << r << ", " << rng.NextBelow(32768) << "\n";
  s << "outer:\n";

  static const char* kAluR[] = {"addq", "subq", "andq", "bisq", "xorq",
                                "bicq", "cmpeq", "cmplt", "cmpule", "addl",
                                "subl", "sextb", "mulq", "umulh", "mull"};
  static const char* kAluI[] = {"addqi", "subqi", "andqi", "bisqi", "xorqi",
                                "mulqi", "cmpeqi", "cmplti", "addli"};
  const int body = 24 + static_cast<int>(rng.NextBelow(24));
  int label = 0;
  for (int i = 0; i < body; ++i) {
    const int a = 1 + static_cast<int>(rng.NextBelow(8));
    const int b = 1 + static_cast<int>(rng.NextBelow(8));
    const int c = 1 + static_cast<int>(rng.NextBelow(8));
    switch (rng.NextBelow(8)) {
      case 0: {  // masked store + load of a random size
        const int size = 1 << (3 * rng.NextBelow(2));  // 1 or 8 bytes
        s << "  andqi r" << a << ", 248, r8\n";  // 8-aligned offset in [0,248]
        s << "  addq r10, r8, r8\n";
        s << (size == 1 ? "  stb r" : "  stq r") << b << ", 0(r8)\n";
        s << (size == 1 ? "  ldbu r" : "  ldq r") << c << ", 0(r8)\n";
        break;
      }
      case 1: {  // shift with a safe literal amount
        s << "  sllqi r" << a << ", " << rng.NextBelow(63) << ", r" << c
          << "\n";
        break;
      }
      case 2: {  // short data-dependent forward branch
        s << "  andqi r" << a << ", 1, r8\n";
        s << "  beq r8, L" << label << "\n";
        s << "  xorqi r" << c << ", 21555, r" << c << "\n";
        s << "L" << label++ << ":\n";
        break;
      }
      case 3: {  // immediate ALU
        s << "  " << kAluI[rng.NextBelow(std::size(kAluI))] << " r" << a
          << ", " << rng.NextRange(-1000, 1000) << ", r" << c << "\n";
        break;
      }
      default: {  // register ALU (includes complex-port ops)
        s << "  " << kAluR[rng.NextBelow(std::size(kAluR))] << " r" << a
          << ", r" << b << ", r" << c << "\n";
        break;
      }
    }
  }
  s << "  subqi r9, 1, r9\n";
  s << "  bgt r9, outer\n";
  s << "hang: br hang\n";
  s << ".data\n.align 8\nbuf: .space 264\n";
  return s.str();
}

class Differential : public ::testing::TestWithParam<int> {};

TEST_P(Differential, PipelineMatchesFunctionalOnRandomPrograms) {
  const std::string src = GenerateProgram(static_cast<std::uint64_t>(
      GetParam()) * 0x9E3779B97F4A7C15ULL + 17);
  const Program prog = Assemble(src);
  Core core(CoreConfig{}, prog);
  FunctionalSim ref(prog);
  std::uint64_t checked = 0;
  for (int c = 0; c < 15000; ++c) {
    core.Cycle();
    ASSERT_EQ(core.halted_exception(), Exception::kNone)
        << "cycle " << c << "\n" << src;
    for (const RetireEvent& ev : core.RetiredThisCycle()) {
      const RetireEvent want = ref.Step();
      ASSERT_EQ(ev, want) << "retire #" << checked << " cycle " << c
                          << "\n  core: " << ToString(ev)
                          << "\n  ref : " << ToString(want);
      ++checked;
    }
  }
  EXPECT_GT(checked, 5000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range(0, 16));

}  // namespace
}  // namespace tfsim
