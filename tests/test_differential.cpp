// Differential testing: randomly generated programs executed on the
// detailed pipeline must retire exactly the functional simulator's
// instruction stream, with the per-cycle invariant checker silent the whole
// way. Programs come from the shared fuzz generator (src/check/progfuzz.h);
// the shape-specific suites sweep corners no hand-written workload hits —
// store bursts with store-to-load forwarding, erratic branch patterns,
// mixed-width memory traffic over overlapping addresses, dense ALU chains.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/fuzz_harness.h"
#include "check/progfuzz.h"

namespace tfsim {
namespace {

using check::FuzzRunOptions;
using check::FuzzShape;

// Same per-seed scrambling as tools/fuzz, so a failing test names a case
// reproducible with `fuzz --shape <shape> --seed-base <param> --seeds 1`.
std::uint64_t ScrambleSeed(int param) {
  return static_cast<std::uint64_t>(param) * 0x9E3779B97F4A7C15ULL + 17;
}

void RunShapeCase(FuzzShape shape, int param) {
  const check::FuzzProgram prog =
      check::GenerateFuzzProgram(ScrambleSeed(param), shape);
  FuzzRunOptions opt;
  opt.cycles = 15000;
  opt.check_invariants = true;
  const check::FuzzCaseResult r = check::RunLockstep(prog.Source(), opt);
  ASSERT_TRUE(r.ok) << check::FuzzShapeName(shape) << " seed-base " << param
                    << ": " << r.failure << "\n"
                    << prog.Source();
  EXPECT_EQ(r.violations, 0u);
  EXPECT_GT(r.retired, 5000u);
}

class MixedDifferential : public ::testing::TestWithParam<int> {};
TEST_P(MixedDifferential, PipelineMatchesFunctional) {
  RunShapeCase(FuzzShape::kMixed, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, MixedDifferential, ::testing::Range(0, 16));

// Store-heavy programs regress the store-queue/store-buffer forwarding
// paths (including the stale forward-shadow bugs the fuzzer originally
// found in the memory-order violation check).
class StoreHeavyDifferential : public ::testing::TestWithParam<int> {};
TEST_P(StoreHeavyDifferential, PipelineMatchesFunctional) {
  RunShapeCase(FuzzShape::kStoreHeavy, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, StoreHeavyDifferential,
                         ::testing::Range(0, 10));

class BranchErraticDifferential : public ::testing::TestWithParam<int> {};
TEST_P(BranchErraticDifferential, PipelineMatchesFunctional) {
  RunShapeCase(FuzzShape::kBranchErratic, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, BranchErraticDifferential,
                         ::testing::Range(0, 10));

class MemWidthsDifferential : public ::testing::TestWithParam<int> {};
TEST_P(MemWidthsDifferential, PipelineMatchesFunctional) {
  RunShapeCase(FuzzShape::kMemWidths, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, MemWidthsDifferential,
                         ::testing::Range(0, 10));

// Direct regressions for the forwarding bugs found by the 200-seed sweep:
// these exact (shape, seed) pairs retired stale load values before the
// store-buffer-forward and SQ-slot-reuse shadow fixes in Core.
struct RegressionCase {
  FuzzShape shape;
  int seed_base;
};

class ForwardShadowRegression
    : public ::testing::TestWithParam<RegressionCase> {};
TEST_P(ForwardShadowRegression, NoStaleForwardedLoads) {
  RunShapeCase(GetParam().shape, GetParam().seed_base);
}
INSTANTIATE_TEST_SUITE_P(
    FuzzFound, ForwardShadowRegression,
    ::testing::Values(RegressionCase{FuzzShape::kStoreHeavy, 8},
                      RegressionCase{FuzzShape::kStoreHeavy, 68},
                      RegressionCase{FuzzShape::kStoreHeavy, 77},
                      RegressionCase{FuzzShape::kStoreHeavy, 120},
                      RegressionCase{FuzzShape::kMemWidths, 57},
                      RegressionCase{FuzzShape::kMemWidths, 153},
                      RegressionCase{FuzzShape::kMixed, 48}));

// The shrinker itself: block masks must compose into valid programs (every
// block is self-contained by construction).
TEST(FuzzProgram, DisabledBlocksStillAssembleAndPass) {
  const check::FuzzProgram prog =
      check::GenerateFuzzProgram(ScrambleSeed(3), FuzzShape::kMixed);
  ASSERT_GT(prog.blocks.size(), 2u);
  std::vector<bool> enabled(prog.blocks.size(), true);
  enabled[0] = false;
  enabled[prog.blocks.size() / 2] = false;
  FuzzRunOptions opt;
  opt.cycles = 6000;
  const check::FuzzCaseResult r =
      check::RunLockstep(prog.Source(enabled), opt);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.retired, 0u);
}

}  // namespace
}  // namespace tfsim
