#include <gtest/gtest.h>

#include "arch/memory.h"
#include "util/rng.h"

namespace tfsim {
namespace {

TEST(Memory, ReadsOfUnmappedAreZero) {
  Memory m;
  EXPECT_EQ(m.ReadByte(0x1234), 0);
  EXPECT_EQ(m.Read(0x99999, 8), 0u);
  EXPECT_EQ(m.MappedPages(), 0u);
}

TEST(Memory, ReadWriteAllSizes) {
  Memory m;
  for (int size : {1, 2, 4, 8}) {
    const std::uint64_t v = 0x1122334455667788ull &
                            (size == 8 ? ~0ULL : (1ULL << (8 * size)) - 1);
    m.Write(0x2000, v, size);
    EXPECT_EQ(m.Read(0x2000, size), v) << size;
  }
}

TEST(Memory, LittleEndianLayout) {
  Memory m;
  m.Write(0x100, 0x0A0B0C0D, 4);
  EXPECT_EQ(m.ReadByte(0x100), 0x0D);
  EXPECT_EQ(m.ReadByte(0x103), 0x0A);
}

TEST(Memory, CrossPageAccess) {
  Memory m;
  const std::uint64_t addr = kPageBytes - 3;
  m.Write(addr, 0x1234567890ABCDEFull, 8);
  EXPECT_EQ(m.Read(addr, 8), 0x1234567890ABCDEFull);
  EXPECT_EQ(m.MappedPages(), 2u);
}

TEST(Memory, HashIsContentDefinedNotOrderDefined) {
  Memory a, b;
  a.Write(0x10, 1, 8);
  a.Write(0x20, 2, 8);
  b.Write(0x20, 2, 8);
  b.Write(0x10, 1, 8);
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  EXPECT_TRUE(a == b);
}

TEST(Memory, HashReturnsAfterUndo) {
  Memory m;
  const std::uint64_t h0 = m.ContentHash();
  m.Write(0x500, 42, 8);
  EXPECT_NE(m.ContentHash(), h0);
  m.Write(0x500, 0, 8);
  EXPECT_EQ(m.ContentHash(), h0);  // zero contributes nothing
}

TEST(Memory, ZeroPagesDontAffectHash) {
  Memory a, b;
  a.Write(0x1000, 7, 1);
  b.Write(0x1000, 7, 1);
  b.Write(0x200000, 0, 8);  // allocates a zero page
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  EXPECT_TRUE(a == b);
}

TEST(Memory, HashDiffersForDifferentContent) {
  Memory a, b;
  a.Write(0x10, 1, 1);
  b.Write(0x10, 2, 1);
  EXPECT_NE(a.ContentHash(), b.ContentHash());
  EXPECT_FALSE(a == b);
}

TEST(Memory, HashDiffersForSameValueAtDifferentAddress) {
  Memory a, b;
  a.Write(0x10, 5, 1);
  b.Write(0x18, 5, 1);
  EXPECT_NE(a.ContentHash(), b.ContentHash());
}

TEST(Memory, CloneIsDeepAndEqual) {
  Memory m;
  m.Write(0x30, 77, 8);
  Memory c = m.Clone();
  EXPECT_EQ(c.ContentHash(), m.ContentHash());
  c.Write(0x30, 78, 8);
  EXPECT_EQ(m.Read(0x30, 8), 77u);
  EXPECT_NE(c.ContentHash(), m.ContentHash());
}

TEST(Memory, BytesRoundTrip) {
  Memory m;
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  m.WriteBytes(0x4000, data);
  EXPECT_EQ(m.ReadBytes(0x4000, 5), data);
}

TEST(Memory, RandomizedHashConsistency) {
  // Property: after arbitrary writes, two memories with identical content
  // have identical hashes even via different write histories.
  Rng rng(31);
  Memory a, b;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = rng.NextBelow(4 * kPageBytes);
    const std::uint8_t v = static_cast<std::uint8_t>(rng.Next());
    a.WriteByte(addr, v);
    b.WriteByte(addr ^ 1, 0xFF);  // scribble elsewhere first
    b.WriteByte(addr ^ 1, a.ReadByte(addr ^ 1));  // then restore
    b.WriteByte(addr, v);
  }
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace tfsim
