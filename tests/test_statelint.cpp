// Adversarial fixtures for the statelint extractor (src/analyze/cpp_model)
// and the lint checks themselves (src/analyze/statelint): comma-declared
// members, nested structs, StateField arrays, conditionally-compiled
// members, ctor-init-list brace initializers, prefix-string registered
// names, and — the acceptance case — a seeded hidden member that MUST be
// flagged.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/cpp_model.h"
#include "analyze/statelint.h"

namespace tfsim::analyze {
namespace {

CppModel ParseText(const std::string& text) {
  CppModel model;
  ParseCppSource("fixture.cpp", text, &model);
  return model;
}

std::vector<Finding> Lint(CppModel& model,
                          const std::string& allow_text = "") {
  std::vector<AllowEntry> allow;
  std::string error;
  EXPECT_TRUE(ParseAllowlist(allow_text, &allow, &error)) << error;
  LintOptions opt;
  return RunStateLint(model, allow, opt);
}

int CountKind(const std::vector<Finding>& fs, FindingKind k) {
  int n = 0;
  for (const auto& f : fs) n += f.kind == k ? 1 : 0;
  return n;
}

// --- extractor: members -----------------------------------------------------

TEST(CppModelTest, CommaDeclaratorsYieldOneMemberEach) {
  const CppModel m = ParseText(R"(
    namespace tfsim {
    class Widget {
     public:
      Widget(StateRegistry& reg);
     private:
      std::uint64_t head_, tail_, count_;
      StateField a_, b_;
      int x_ = 1, y_ = 2;
    };
    }
  )");
  const CppClass* c = m.FindClass("Widget");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->registry_ctor);
  ASSERT_EQ(c->members.size(), 7u);
  for (const char* n : {"head_", "tail_", "count_", "x_", "y_"}) {
    const CppMember* mem = c->FindMember(n);
    ASSERT_NE(mem, nullptr) << n;
    EXPECT_FALSE(mem->is_state_field) << n;
    EXPECT_TRUE(mem->MutableNonField()) << n;
  }
  for (const char* n : {"a_", "b_"}) {
    const CppMember* mem = c->FindMember(n);
    ASSERT_NE(mem, nullptr) << n;
    EXPECT_TRUE(mem->is_state_field) << n;
  }
}

TEST(CppModelTest, NestedStructDeclaratorBecomesEnclosingMember) {
  const CppModel m = ParseText(R"(
    class Outer {
      struct Entry {
        std::uint64_t addr;
        bool valid;
      } entries_;
      StateField data_;
    };
  )");
  const CppClass* outer = m.FindClass("Outer");
  ASSERT_NE(outer, nullptr);
  const CppMember* entries = outer->FindMember("entries_");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->type, "Entry");
  const CppClass* nested = m.FindClass("Outer::Entry");
  ASSERT_NE(nested, nullptr);
  EXPECT_NE(nested->FindMember("addr"), nullptr);
  EXPECT_NE(nested->FindMember("valid"), nullptr);
}

TEST(CppModelTest, StateFieldArraysAndArraySuffixes) {
  const CppModel m = ParseText(R"(
    class Banks {
      StateField lanes_[4];
      std::uint8_t scratch_[16];
      static constexpr int kWays = 4;
      const int ways_ = 4;
    };
  )");
  const CppClass* c = m.FindClass("Banks");
  ASSERT_NE(c, nullptr);
  const CppMember* lanes = c->FindMember("lanes_");
  ASSERT_NE(lanes, nullptr);
  EXPECT_TRUE(lanes->is_state_field);
  EXPECT_EQ(lanes->array_suffix, "[4]");
  const CppMember* scratch = c->FindMember("scratch_");
  ASSERT_NE(scratch, nullptr);
  EXPECT_TRUE(scratch->MutableNonField());
  const CppMember* kways = c->FindMember("kWays");
  ASSERT_NE(kways, nullptr);
  EXPECT_FALSE(kways->MutableNonField());  // static constexpr
  const CppMember* ways = c->FindMember("ways_");
  ASSERT_NE(ways, nullptr);
  EXPECT_FALSE(ways->MutableNonField());  // const
}

TEST(CppModelTest, ConditionallyCompiledMembersAreAlwaysSeen) {
  // A member under #ifdef exists in SOME build; the lint must see every
  // branch (both the #if and #else arms).
  const CppModel m = ParseText(R"(
    class Gated {
      StateField always_;
    #ifdef TFI_EXTRA_STATE
      std::uint64_t extra_;
    #else
      std::uint64_t fallback_;
    #endif
    };
  )");
  const CppClass* c = m.FindClass("Gated");
  ASSERT_NE(c, nullptr);
  EXPECT_NE(c->FindMember("extra_"), nullptr);
  EXPECT_NE(c->FindMember("fallback_"), nullptr);
}

TEST(CppModelTest, ConstPointerMemberIsStillMutableState) {
  const CppModel m = ParseText(R"(
    class Holder {
      const Sink* sink_ = nullptr;
      StateField f_;
    };
  )");
  const CppMember* sink = m.FindClass("Holder")->FindMember("sink_");
  ASSERT_NE(sink, nullptr);
  EXPECT_TRUE(sink->MutableNonField());  // const binds to the pointee
}

// --- extractor: allocations -------------------------------------------------

TEST(CppModelTest, AllocationAttributionAndAliasResolution) {
  const CppModel m = ParseText(R"(
    namespace tfsim {
    Widget::Widget(StateRegistry& reg, const Config& cfg)
        : head_{0}, tail_(0) {
      const auto latch = Storage::kLatch;
      head_f_ = reg.Allocate("w.head", StateCat::kQctrl, latch, 1, 4);
      data_ = reg.Allocate("w.data", StateCat::kData, Storage::kRam,
                           entries_, 64);
    }
    }
  )");
  ASSERT_EQ(m.allocations.size(), 2u);
  const CppAllocation& a0 = m.allocations[0];
  EXPECT_EQ(a0.class_name, "Widget");
  EXPECT_EQ(a0.member, "head_f_");
  EXPECT_EQ(a0.reg_name, "w.head");
  EXPECT_EQ(a0.cat, "kQctrl");
  EXPECT_EQ(a0.storage, "kLatch");  // resolved through the local alias
  EXPECT_EQ(a0.count_value, 1);
  EXPECT_EQ(a0.width_value, 4);
  const CppAllocation& a1 = m.allocations[1];
  EXPECT_EQ(a1.member, "data_");
  EXPECT_EQ(a1.storage, "kRam");
  EXPECT_EQ(a1.count_expr, "entries_");
  EXPECT_EQ(a1.count_value, -1);  // non-literal count
}

TEST(CppModelTest, PrefixStringNamesAreSuffixMatches) {
  const CppModel m = ParseText(R"(
    Bank::Bank(StateRegistry& reg, const std::string& p) {
      valid_ = reg.Allocate(p + ".valid", StateCat::kValid, Storage::kLatch,
                            8, 1);
    }
  )");
  ASSERT_EQ(m.allocations.size(), 1u);
  const CppAllocation& a = m.allocations[0];
  EXPECT_EQ(a.reg_name, ".valid");
  EXPECT_TRUE(a.name_is_suffix);
  EXPECT_TRUE(a.MatchesFieldName("d1.valid"));
  EXPECT_TRUE(a.MatchesFieldName("d2.valid"));
  EXPECT_FALSE(a.MatchesFieldName("d1.invalid2"));
  EXPECT_FALSE(a.MatchesFieldName(".valid"));  // a bare suffix is no field
}

TEST(CppModelTest, ArrayElementAssignmentAttributesToMember) {
  const CppModel m = ParseText(R"(
    Bank::Bank(StateRegistry& reg) {
      for (int i = 0; i < 4; ++i)
        lanes_[i] = reg.Allocate("bank.lane", StateCat::kData,
                                 Storage::kLatch, 1, 64);
    }
  )");
  ASSERT_EQ(m.allocations.size(), 1u);
  EXPECT_EQ(m.allocations[0].member, "lanes_");
}

TEST(CppModelTest, IdentifierCountsIgnoreStringsAndSubwords) {
  CppModel m;
  ParseCppSource("f.cpp", R"(
    int head = 0;
    use(head);
    str = "head of queue";  // inside a literal: must not count
    int head_count = head;  // subword on the lhs: must not count
  )", &m);
  EXPECT_EQ(CountIdentifier(m.files[0].blanked, "head"), 3);
}

// --- lint: finding classes --------------------------------------------------

// The acceptance-criteria case: seed a hidden mutable member into an
// otherwise fully-registered class and require the lint to flag exactly it.
TEST(StateLintTest, SeededHiddenMemberIsFlagged) {
  CppModel m = ParseText(R"(
    class Sneaky {
     public:
      Sneaky(StateRegistry& reg) {
        valid_ = reg.Allocate("sneaky.valid", StateCat::kValid,
                              Storage::kLatch, 1, 1);
      }
     private:
      StateField valid_;
      std::uint64_t shadow_pc_;  // hidden state: never registered
    };
  )");
  const std::vector<Finding> fs = Lint(m);
  ASSERT_EQ(CountKind(fs, FindingKind::kHiddenState), 1);
  const Finding* hidden = nullptr;
  for (const auto& f : fs)
    if (f.kind == FindingKind::kHiddenState) hidden = &f;
  ASSERT_NE(hidden, nullptr);
  EXPECT_EQ(hidden->where, "Sneaky.shadow_pc_");
}

TEST(StateLintTest, AllowlistSuppressesAndUnusedEntriesAreFlagged) {
  CppModel m = ParseText(R"(
    class Sneaky {
      Sneaky(StateRegistry& reg);
      StateField valid_;
      std::uint64_t shadow_pc_;
    };
    Sneaky::Sneaky(StateRegistry& reg) {
      valid_ = reg.Allocate("s.valid", StateCat::kValid, Storage::kLatch,
                            1, 1);
    }
  )");
  const std::vector<Finding> fs =
      Lint(m,
           "Sneaky.shadow_pc_: test fixture justification\n"
           "Sneaky.ghost_: entry that matches nothing\n");
  EXPECT_EQ(CountKind(fs, FindingKind::kHiddenState), 0);
  ASSERT_EQ(CountKind(fs, FindingKind::kUnusedAllowlist), 1);
}

TEST(StateLintTest, AllowlistRequiresJustification) {
  std::vector<AllowEntry> allow;
  std::string error;
  EXPECT_FALSE(ParseAllowlist("Sneaky.shadow_pc_:\n", &allow, &error));
  EXPECT_NE(error.find("justification"), std::string::npos);
  EXPECT_FALSE(ParseAllowlist("just a bare line\n", &allow, &error));
}

TEST(StateLintTest, UnbackedStateFieldMemberIsFlagged) {
  CppModel m = ParseText(R"(
    class Half {
      Half(StateRegistry& reg);
      StateField registered_;
      StateField orphan_;
    };
    Half::Half(StateRegistry& reg) {
      registered_ = reg.Allocate("h.reg", StateCat::kCtrl, Storage::kLatch,
                                 1, 1);
    }
  )");
  const std::vector<Finding> fs = Lint(m);
  ASSERT_EQ(CountKind(fs, FindingKind::kHiddenState), 1);
  EXPECT_EQ(fs[0].where, "Half.orphan_");
}

TEST(StateLintTest, StaleRegistrationIsFlagged) {
  // `dead_` is allocated but never read back anywhere; `live_` is used.
  CppModel m = ParseText(R"(
    class Q {
      Q(StateRegistry& reg);
      std::uint64_t Peek() const;
      StateField live_;
      StateField dead_;
    };
    Q::Q(StateRegistry& reg) {
      live_ = reg.Allocate("q.live", StateCat::kCtrl, Storage::kLatch, 1, 8);
      dead_ = reg.Allocate("q.dead", StateCat::kCtrl, Storage::kLatch, 1, 8);
    }
    std::uint64_t Q::Peek() const { return read(live_); }
  )");
  const std::vector<Finding> fs = Lint(m);
  ASSERT_EQ(CountKind(fs, FindingKind::kStaleRegistration), 1);
  const Finding* stale = nullptr;
  for (const auto& f : fs)
    if (f.kind == FindingKind::kStaleRegistration) stale = &f;
  EXPECT_EQ(stale->where, "Q.dead_");
}

TEST(StateLintTest, CatStorageMismatchesAreFlagged) {
  CppModel m = ParseText(R"(
    class Shapes {
      Shapes(StateRegistry& reg);
      std::uint64_t Use() const;
      StateField big_latch_;
      StateField lone_ram_;
      StateField fat_parity_;
    };
    Shapes::Shapes(StateRegistry& reg) {
      big_latch_ = reg.Allocate("s.big", StateCat::kData, Storage::kLatch,
                                512, 64);
      lone_ram_ = reg.Allocate("s.lone", StateCat::kCtrl, Storage::kRam,
                               1, 8);
      fat_parity_ = reg.Allocate("s.par", StateCat::kParity, Storage::kLatch,
                                 4, 8);
    }
    std::uint64_t Shapes::Use() const {
      return read(big_latch_) + read(lone_ram_) + read(fat_parity_);
    }
  )");
  const std::vector<Finding> fs = Lint(m);
  EXPECT_EQ(CountKind(fs, FindingKind::kCatStorageMismatch), 3);
}

TEST(StateLintTest, NonParticipatingClassesAreExempt) {
  // A plain struct with no registry ctor and no StateField members is not
  // part of the injection surface — no findings no matter its members.
  CppModel m = ParseText(R"(
    struct PlainConfig {
      int width = 4;
      std::uint64_t entries = 64;
    };
  )");
  EXPECT_TRUE(Lint(m).empty());
}

}  // namespace
}  // namespace tfsim::analyze
