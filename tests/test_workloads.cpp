// Workload-suite sanity: every program assembles, terminates, produces
// deterministic non-trivial output, and exercises the microarchitectural
// structures its SPEC namesake is meant to stress.
#include <gtest/gtest.h>

#include "arch/functional_sim.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

class WorkloadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadTest, AssemblesAndTerminates) {
  const Program prog = BuildWorkload(WorkloadByName(GetParam()), 3);
  FunctionalSim sim(prog);
  sim.Run(20'000'000);
  ASSERT_TRUE(sim.state().exited) << "did not exit";
  EXPECT_EQ(sim.pending_exception(), Exception::kNone);
  EXPECT_EQ(sim.state().output.size(), 8u);  // one checksum qword
}

TEST_P(WorkloadTest, OutputIsDeterministic) {
  const Program prog = BuildWorkload(WorkloadByName(GetParam()), 2);
  FunctionalSim a(prog), b(prog);
  a.Run(20'000'000);
  b.Run(20'000'000);
  EXPECT_EQ(a.state().output, b.state().output);
}

TEST_P(WorkloadTest, IterationCountChangesOutput) {
  // The checksum must actually depend on the work performed.
  const auto& info = WorkloadByName(GetParam());
  FunctionalSim a(BuildWorkload(info, 2)), b(BuildWorkload(info, 4));
  a.Run(20'000'000);
  b.Run(20'000'000);
  EXPECT_NE(a.state().output, b.state().output);
}

TEST_P(WorkloadTest, ChattyModeEmitsPerIteration) {
  const Program prog = BuildWorkload(WorkloadByName(GetParam()), 3, true);
  FunctionalSim sim(prog);
  sim.Run(20'000'000);
  ASSERT_TRUE(sim.state().exited);
  EXPECT_EQ(sim.state().output.size(), 8u * 4);  // 3 iterations + final
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadTest,
                         ::testing::Values("bzip2", "crafty", "gap", "gcc",
                                           "gzip", "mcf", "parser", "twolf",
                                           "vortex", "vpr"),
                         [](const auto& p) { return std::string(p.param); });

TEST(Workloads, RegistryIsComplete) {
  EXPECT_EQ(AllWorkloads().size(), 10u);
  EXPECT_THROW(WorkloadByName("nonesuch"), std::out_of_range);
}

TEST(Workloads, ProfilesSpanTheIntendedSpace) {
  // The suite must span high/low IPC, good/poor branch prediction, and
  // cache-friendly/hostile behaviour, like the paper's SPEC2000int set.
  double min_ipc = 99, max_ipc = 0;
  std::uint64_t max_miss = 0;
  double worst_bp = 1.0;
  for (const auto& w : AllWorkloads()) {
    Core core(CoreConfig{}, BuildWorkload(w, kCampaignIters));
    for (int c = 0; c < 80000; ++c) core.Cycle();
    const auto& st = core.stats();
    min_ipc = std::min(min_ipc, st.Ipc());
    max_ipc = std::max(max_ipc, st.Ipc());
    max_miss = std::max(max_miss, st.dcache_misses);
    if (st.branches)
      worst_bp = std::min(
          worst_bp, 1.0 - static_cast<double>(st.mispredicts) /
                              static_cast<double>(st.branches));
  }
  EXPECT_LT(min_ipc, 1.4);
  EXPECT_GT(max_ipc, 2.0);
  EXPECT_GT(max_miss, 2000u);   // mcf-style miss traffic exists
  EXPECT_LT(worst_bp, 0.90);    // some workload defeats the predictors
}

}  // namespace
}  // namespace tfsim
