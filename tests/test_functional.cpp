#include <gtest/gtest.h>

#include "arch/functional_sim.h"
#include "arch/syscall.h"
#include "isa/assemble.h"

namespace tfsim {
namespace {

FunctionalSim RunProg(const std::string& src, std::uint64_t max = 100000) {
  FunctionalSim sim(Assemble(src));
  sim.Run(max);
  return sim;
}

TEST(Functional, StraightLineArithmetic) {
  auto sim = RunProg(R"(
      addqi zero, 6, r1
      addqi zero, 7, r2
      mulq r1, r2, r3
      hang: br hang
  )", 4);
  EXPECT_EQ(sim.state().Reg(3), 42u);
}

TEST(Functional, R31ReadsZeroAndDiscardsWrites) {
  auto sim = RunProg(R"(
      addqi zero, 99, r31
      addq r31, r31, r1
      hang: br hang
  )", 3);
  EXPECT_EQ(sim.state().Reg(1), 0u);
}

TEST(Functional, LoopComputesSum) {
  auto sim = RunProg(R"(
      li r1, 100         ; n
      li r2, 0           ; sum
      loop:
      addq r2, r1, r2
      subqi r1, 1, r1
      bgt r1, loop
      hang: br hang
  )", 1000);
  EXPECT_EQ(sim.state().Reg(2), 5050u);
}

TEST(Functional, CallAndReturn) {
  auto sim = RunProg(R"(
      _start:
      bsr ra, func
      addqi r1, 1, r1
      hang: br hang
      func:
      li r1, 41
      ret
  )", 20);
  EXPECT_EQ(sim.state().Reg(1), 42u);
}

TEST(Functional, IndirectJump) {
  auto sim = RunProg(R"(
      la r4, target
      jmp zero, r4
      li r1, 1
      target: li r2, 2
      hang: br hang
  )", 10);
  EXPECT_EQ(sim.state().Reg(1), 0u);
  EXPECT_EQ(sim.state().Reg(2), 2u);
}

TEST(Functional, LoadStoreRoundTrip) {
  auto sim = RunProg(R"(
      la r1, buf
      li r2, 0x12345678
      stq r2, 0(r1)
      ldq r3, 0(r1)
      stl r2, 8(r1)
      ldl r4, 8(r1)
      stb r2, 16(r1)
      ldbu r5, 16(r1)
      hang: br hang
      .data
      buf: .space 32
  )", 20);
  EXPECT_EQ(sim.state().Reg(3), 0x12345678u);
  EXPECT_EQ(sim.state().Reg(4), 0x12345678u);
  EXPECT_EQ(sim.state().Reg(5), 0x78u);
}

TEST(Functional, LdlSignExtends) {
  auto sim = RunProg(R"(
      la r1, buf
      ldl r2, 0(r1)
      hang: br hang
      .data
      buf: .long 0x80000001
  )", 10);
  EXPECT_EQ(sim.state().Reg(2), 0xFFFFFFFF80000001ull);
}

TEST(Functional, ExitSyscall) {
  auto sim = RunProg(R"(
      li a0, 5
      li v0, 1
      syscall
  )", 10);
  EXPECT_TRUE(sim.state().exited);
  EXPECT_EQ(sim.state().exit_code, 5u);
  EXPECT_FALSE(sim.Running());
}

TEST(Functional, WriteSyscallCollectsOutput) {
  auto sim = RunProg(R"(
      la a0, msg
      li a1, 5
      li v0, 2
      syscall
      li a0, 0
      li v0, 1
      syscall
      .data
      msg: .asciiz "hello"
  )", 20);
  const std::string out(sim.state().output.begin(), sim.state().output.end());
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(sim.state().Reg(0), 0u);  // exit overwrote r0 with its result
}

TEST(Functional, UnknownSyscallReturnsError) {
  auto sim = RunProg("li v0, 999\n syscall\n hang: br hang\n", 5);
  EXPECT_EQ(sim.state().Reg(0), static_cast<std::uint64_t>(-1));
}

TEST(Functional, WriteSyscallClampsHugeLengths) {
  auto sim = RunProg(R"(
      la a0, msg
      li a1, 0x7FFF0000
      li v0, 2
      syscall
      hang: br hang
      .data
      msg: .byte 1
  )", 10);
  EXPECT_EQ(sim.state().output.size(), kMaxWriteBytes);
}

struct ExcCase {
  const char* name;
  const char* src;
  Exception want;
};

class ExceptionTest : public ::testing::TestWithParam<ExcCase> {};

TEST_P(ExceptionTest, Raises) {
  auto sim = RunProg(GetParam().src, 20);
  EXPECT_EQ(sim.pending_exception(), GetParam().want);
  EXPECT_FALSE(sim.Running());
}

INSTANTIATE_TEST_SUITE_P(
    AllExceptions, ExceptionTest,
    ::testing::Values(
        ExcCase{"illegal", ".long 0\n", Exception::kIllegalOpcode},
        ExcCase{"div0", "li r1, 3\n divq r1, zero, r2\n",
                Exception::kDivZero},
        ExcCase{"overflow",
                "li r1, 1\n sllqi r1, 62, r1\n addv r1, r1, r2\n",
                Exception::kOverflow},
        ExcCase{"unaligned_load", "li r1, 3\n ldq r2, 0(r1)\n",
                Exception::kUnaligned},
        ExcCase{"unaligned_store", "li r1, 2\n stl r2, 0(r1)\n",
                Exception::kUnaligned}),
    [](const auto& p) { return std::string(p.param.name); });

TEST(Functional, TlbLearningThenChecking) {
  const Program p = Assemble(R"(
      la r1, buf
      ldq r2, 0(r1)
      li r3, 0x200000
      ldq r4, 0(r3)
      hang: br hang
      .data
      buf: .word 1
  )");
  // Learning mode permits everything.
  FunctionalSim learn(p);
  learn.Run(10);
  EXPECT_EQ(learn.pending_exception(), Exception::kNone);

  // Checking mode with only the learned pages faults on the wild access...
  FunctionalSim strict(p);
  strict.tlb().LookupData(p.symbols.at("buf"));
  strict.tlb().LookupInsn(p.entry);
  strict.tlb().LookupInsn(p.entry + 60);
  strict.tlb().SetLearning(false);
  strict.Run(10);
  EXPECT_EQ(strict.pending_exception(), Exception::kDTlbMiss);
}

TEST(Functional, RetireEventsRecordWrites) {
  FunctionalSim sim(Assemble("addqi zero, 9, r4\nhang: br hang\n"));
  const RetireEvent e = sim.Step();
  EXPECT_EQ(e.dst, 4);
  EXPECT_EQ(e.value, 9u);
  EXPECT_EQ(e.exc, Exception::kNone);
}

TEST(Functional, RetireEventsRecordStores) {
  FunctionalSim sim(Assemble(R"(
      la r1, buf
      li r2, 7
      stq r2, 8(r1)
      .data
      buf: .space 16
  )"));
  sim.Run(4);
  RetireEvent e = sim.Step();
  EXPECT_TRUE(e.is_store);
  EXPECT_EQ(e.store_value, 7u);
  EXPECT_EQ(e.store_size, 8);
}

TEST(Functional, ArchStateHashChangesWithState) {
  FunctionalSim a(Assemble("addqi zero, 1, r1\nhang: br hang\n"));
  FunctionalSim b(Assemble("addqi zero, 2, r1\nhang: br hang\n"));
  a.Step();
  b.Step();
  EXPECT_NE(a.state().Hash(), b.state().Hash());
}

}  // namespace
}  // namespace tfsim
