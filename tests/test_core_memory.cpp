// Memory-system integration tests observed through the live core:
// store-to-load forwarding, store-buffer forwarding, miss/replay behaviour,
// and load/store ordering — all validated by functional co-simulation plus
// direct counter checks.
#include <gtest/gtest.h>

#include "arch/functional_sim.h"
#include "isa/assemble.h"
#include "uarch/core.h"

namespace tfsim {
namespace {

// Runs prog on the pipeline co-simulated against the functional reference;
// returns the final core stats.
CoreStats CoSimStats(const Program& prog, int cycles) {
  Core core(CoreConfig{}, prog);
  FunctionalSim ref(prog);
  for (int c = 0; c < cycles; ++c) {
    core.Cycle();
    EXPECT_EQ(core.halted_exception(), Exception::kNone);
    for (const RetireEvent& ev : core.RetiredThisCycle()) {
      const RetireEvent want = ref.Step();
      EXPECT_EQ(ev, want) << ToString(ev) << "\n" << ToString(want);
      if (!(ev == want)) return core.stats();
    }
    if (core.exited()) break;
  }
  return core.stats();
}

TEST(CoreMemory, StoreToLoadForwardingIsExact) {
  // Store immediately followed by a same-address load, repeatedly: the value
  // must forward from the SQ (or SB) and always be correct.
  const Program prog = Assemble(R"(
      _start:
      li r1, 2000
      la r2, buf
      li r3, 0
      loop:
      andqi r1, 7, r4
      sllqi r4, 3, r4
      addq r2, r4, r4
      stq r1, 0(r4)
      ldq r5, 0(r4)        ; must see the just-stored value
      addq r3, r5, r3
      subqi r1, 1, r1
      bgt r1, loop
      hang: br hang
      .data
      buf: .space 64
  )");
  const CoreStats st = CoSimStats(prog, 40000);
  EXPECT_GT(st.retired, 14000u);
}

TEST(CoreMemory, PartialOverlapStoresStallNotCorrupt) {
  // Byte stores under a quadword load: no exact-match forward is possible,
  // so the load must wait for drain — and always read the right bytes.
  const Program prog = Assemble(R"(
      _start:
      li r1, 1500
      la r2, buf
      loop:
      stb r1, 3(r2)        ; partial overlap with the load below
      ldq r5, 0(r2)
      addq r5, r1, r6
      stq r6, 8(r2)
      subqi r1, 1, r1
      bgt r1, loop
      hang: br hang
      .data
      .align 8
      buf: .space 32
  )");
  const CoreStats st = CoSimStats(prog, 60000);
  EXPECT_GT(st.retired, 8000u);
}

TEST(CoreMemory, CacheMissesCauseReplays) {
  // A pointer chase over 128 KB misses constantly; consumers issued under
  // the speculative hit assumption must replay.
  const Program prog = Assemble(R"(
      _start:
      li r1, 3000
      la r2, big
      li r3, 0
      li r6, 0
      loop:
      sllqi r6, 3, r4
      addq r2, r4, r4
      ldq r5, 0(r4)        ; usually a miss
      addq r3, r5, r3      ; dependent: replays on every miss
      addqi r6, 515, r6
      sllqi r6, 50, r7
      srlqi r7, 50, r6     ; r6 mod 16384
      subqi r1, 1, r1
      bgt r1, loop
      hang: br hang
      .data
      .align 8
      big: .space 131072
  )");
  const CoreStats st = CoSimStats(prog, 120000);
  EXPECT_GT(st.dcache_misses, 1000u);
  EXPECT_GT(st.replays, 500u);
}

TEST(CoreMemory, UnalignedAccessRaisesAtRetirement) {
  const Program prog = Assemble(R"(
      _start:
      li r1, 5
      ldq r2, 0(r1)
      hang: br hang
  )");
  Core core(CoreConfig{}, prog);
  for (int c = 0; c < 300 && core.halted_exception() == Exception::kNone; ++c)
    core.Cycle();
  EXPECT_EQ(core.halted_exception(), Exception::kUnaligned);
}

TEST(CoreMemory, WrongPathLoadsDoNotCorruptState) {
  // A hard-to-predict branch guards a load from a "poison" region; the
  // wrong-path load may execute speculatively but must never retire.
  const Program prog = Assemble(R"(
      _start:
      li r1, 2000
      li r2, 99991
      la r3, safe
      la r4, poison
      li r5, 0
      loop:
      li r6, 1103515245
      mulq r2, r6, r2
      addqi r2, 12345, r2
      srlqi r2, 17, r6
      andqi r6, 1, r6
      beq r6, skip         ; data-dependent: mispredicts often
      ldq r7, 0(r3)
      addq r5, r7, r5
      br next
      skip:
      ldq r7, 8(r3)
      xorq r5, r7, r5
      next:
      subqi r1, 1, r1
      bgt r1, loop
      hang: br hang
      .data
      .align 8
      safe: .word 17, 29
      poison: .word 0xDEAD
  )");
  const CoreStats st = CoSimStats(prog, 80000);
  EXPECT_GT(st.mispredicts, 300u);
}

TEST(CoreMemory, StoreBufferDrainsInOrder) {
  // A burst of stores larger than the 8-entry store buffer must still all
  // land, in order, with retirement stalling as needed.
  const Program prog = Assemble(R"(
      _start:
      li r1, 200
      la r2, buf
      outer:
      li r3, 16
      mov r2, r4
      burst:
      stq r3, 0(r4)
      addqi r4, 8, r4
      subqi r3, 1, r3
      bgt r3, burst
      ldq r5, 64(r2)
      subqi r1, 1, r1
      bgt r1, outer
      hang: br hang
      .data
      .align 8
      buf: .space 256
  )");
  const CoreStats st = CoSimStats(prog, 60000);
  EXPECT_GT(st.retired, 10000u);
}

TEST(CoreMemory, IcacheMissesStallFetchOnly) {
  // A loop bouncing between two far-apart code regions thrashes the 8 KB
  // I-cache; execution stays correct.
  const Program prog = Assemble(R"(
      _start:
      li r1, 400
      li r3, 0
      loop:
      bsr ra, far
      subqi r1, 1, r1
      bgt r1, loop
      hang: br hang
      .org 0x3000
      far:
      addqi r3, 7, r3
      ret
  )");
  const CoreStats st = CoSimStats(prog, 40000);
  EXPECT_GT(st.retired, 1500u);
}

}  // namespace
}  // namespace tfsim
