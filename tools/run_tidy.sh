#!/usr/bin/env sh
# Runs clang-tidy (profile: .clang-tidy) over the library and tool sources
# using the compile_commands.json that every CMake configure exports.
#
#   tools/run_tidy.sh               # lint the default build dir (./build)
#   tools/run_tidy.sh mybuild       # lint against another build dir
#   TIDY=clang-tidy-18 tools/run_tidy.sh
#
# Exits nonzero if clang-tidy reports any warning. clang-tidy is an optional
# developer dependency: the script degrades to a clear message (exit 0) when
# the binary is absent so CI images without LLVM stay green.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
tidy="${TIDY:-clang-tidy}"

if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_tidy: $tidy not found; install clang-tidy or set TIDY=<binary>" >&2
  exit 0
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "run_tidy: $build/compile_commands.json missing; configure first:" >&2
  echo "  cmake -B $build -S $repo" >&2
  exit 1
fi

# shellcheck disable=SC2046  # file list is intentionally word-split
exec "$tidy" -p "$build" --quiet --warnings-as-errors='*' \
  $(find "$repo/src" "$repo/tools" -name '*.cpp' | sort)
