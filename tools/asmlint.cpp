// asmlint — static CFG/dataflow verification of the workload programs.
//
//   asmlint --allow tools/asmlint_allow.txt
//       lint every workload in the suite: decode the assembled image, build
//       the control-flow graph, run liveness / reaching-definitions /
//       use-before-def / dead-store / stack-discipline checks, and report
//       anything suspicious as structured findings. Exit code = number of
//       findings (0 = programs verified).
//
//   asmlint gzip mcf file.s      lint specific workloads and/or .s files
//   asmlint ... --harden MODE    additionally harden each unit (cfc, dup or
//                                full) and statically verify the transform
//                                with VerifyHardened — the software-hardening
//                                analogue of the lint
//   asmlint ... --dump           print the lifted program as assembler-
//                                compatible text (round-trips through
//                                Assemble)
//
// Runs as the `asmlint_workloads` ctest, making "the fault-injection inputs
// are well-formed programs" a CI-enforced invariant, the software analogue
// of statelint's Table-1 completeness check.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/asm/asmlint.h"
#include "soft/harden.h"
#include "util/argparse.h"
#include "workloads/workloads.h"

using namespace tfsim;
using namespace tfsim::analyze;

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// A unit is a workload name from the suite or a .s assembly file.
Program LoadUnit(const std::string& what) {
  if (what.size() > 2 && what.substr(what.size() - 2) == ".s")
    return Assemble(ReadFile(what));
  return BuildWorkload(WorkloadByName(what), kCampaignIters);
}

std::string UnitName(const std::string& what) {
  const std::size_t slash = what.find_last_of('/');
  return slash == std::string::npos ? what : what.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string allow_path;
  std::string harden_mode;
  bool dump = false;
  ArgParser ap;
  ap.AddStr("allow", &allow_path, "allowlist of audited exceptions");
  ap.AddStr("harden", &harden_mode,
            "also verify the hardened variant: cfc, dup or full");
  ap.AddFlag("dump", &dump, "print each unit's lifted disassembly");
  if (!ap.Parse(argc, argv)) {
    std::fprintf(stderr, "%s\nusage: asmlint [unit|file.s ...] [--allow FILE]"
                 " [--harden MODE]\n%s",
                 ap.error().c_str(), ap.Help().c_str());
    return 2;
  }

  try {
    std::vector<std::string> units = ap.positional();
    if (units.empty())
      for (const auto& w : AllWorkloads()) units.push_back(w.name);

    std::vector<AllowEntry> allow;
    if (!allow_path.empty()) {
      std::string error;
      if (!ParseAllowlist(ReadFile(allow_path), &allow, &error)) {
        std::fprintf(stderr, "asmlint: %s\n", error.c_str());
        return 2;
      }
    }

    std::vector<HardenMode> modes;
    if (!harden_mode.empty()) {
      if (harden_mode == "cfc") modes.push_back(HardenMode::kCfc);
      else if (harden_mode == "dup") modes.push_back(HardenMode::kDup);
      else if (harden_mode == "full") modes.push_back(HardenMode::kFull);
      else throw std::runtime_error("unknown --harden mode: " + harden_mode);
    }

    std::size_t total = 0;
    std::size_t insts = 0;
    for (const std::string& u : units) {
      const std::string unit = UnitName(u);
      const Program prog = LoadUnit(u);
      const AsmProgram ap2 = Lift(prog);
      insts += ap2.insts.size();
      if (dump) std::fputs(DisassembleProgram(prog).c_str(), stdout);

      AsmLintOptions opt;
      opt.unit = unit;
      std::vector<AsmFinding> findings = RunAsmLint(ap2, allow, opt);
      for (HardenMode m : modes) {
        const HardenedProgram hp = Harden(prog, m);
        std::vector<AsmFinding> hf =
            VerifyHardened(prog, hp.program, m, unit + "+" +
                           HardenModeName(m));
        findings.insert(findings.end(), hf.begin(), hf.end());
      }
      for (const AsmFinding& f : findings)
        std::fprintf(stderr, "%s\n", f.Format().c_str());
      total += findings.size();
    }
    // Unused allowlist entries only become findings once every unit has had
    // a chance to consume them (the file spans the whole suite).
    const std::vector<AsmFinding> unused = UnusedAllowFindings(allow);
    for (const AsmFinding& f : unused)
      std::fprintf(stderr, "%s\n", f.Format().c_str());
    total += unused.size();

    if (total == 0) {
      std::printf(
          "asmlint: %zu unit(s), %zu instruction(s), %zu allowlisted "
          "exception(s) — programs verified\n",
          units.size(), insts, allow.size());
    } else {
      std::fprintf(stderr, "asmlint: %zu finding(s)\n", total);
    }
    return static_cast<int>(total);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asmlint: %s\n", e.what());
    return 2;
  }
}
