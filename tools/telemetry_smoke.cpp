// CTest smoke for campaign telemetry, end to end: runs a campaign with the
// structured event journal, a JSONL file sink and the HTTP status server on
// an ephemeral port, polls /progress, /metrics, /heatmap and /events from a
// tiny built-in client WHILE trials execute, and validates every response
// (and the journal file) with the built-in JSON checker — no python, no
// external curl. After the run it cross-checks the heatmap's per-category
// failure-contribution ordering against the same ordering computed directly
// from the campaign result (the Figure 8 computation).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "inject/campaign.h"
#include "inject/report.h"
#include "obs/events.h"
#include "obs/heatmap.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/status_server.h"
#include "util/http.h"

using namespace tfsim;

namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  std::printf("%-58s %s\n", what.c_str(), ok ? "ok" : "FAIL");
  if (!ok) ++g_failures;
}

bool LintBody(const std::string& body, const char* endpoint) {
  std::string err;
  const bool ok = obs::JsonLint(body, &err);
  if (!ok) std::fprintf(stderr, "%s: %s\n%s\n", endpoint, err.c_str(), body.c_str());
  return ok;
}

}  // namespace

int main() {
  const auto dir =
      std::filesystem::temp_directory_path() / "tfsim_telemetry_smoke";
  std::filesystem::create_directories(dir);
  setenv("TFI_CACHE_DIR", (dir / "cache").c_str(), 1);

  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 80;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;

  obs::EventJournal journal;
  const auto events_path = dir / "events.jsonl";
  std::ofstream events_out(events_path);
  obs::JsonlEventSink events_sink(events_out);
  journal.AddSink(&events_sink);

  obs::CampaignStatusServer status;
  std::string err;
  Check(status.Start(0, journal, &err), "status server starts (" + err + ")");
  Check(status.port() != 0, "ephemeral port assigned");
  const std::uint16_t port = status.port();

  obs::MetricsRegistry metrics;
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  opt.jobs = 2;
  opt.obs.events = &journal;
  opt.obs.sinks.metrics = &metrics;

  // Run the campaign off-thread; the main thread plays the live client.
  CampaignResult result;
  std::atomic<bool> running{true};
  std::thread campaign([&] {
    result = RunCampaign(spec, opt);
    running.store(false);
  });

  // Poll all four endpoints for as long as the campaign runs (and once
  // after), validating every response as JSON.
  int progress_polls = 0;
  bool progress_ok = true, metrics_ok = true, heatmap_ok = true,
       events_ok = true;
  bool saw_live_progress = false;
  do {
    std::string body;
    int http_status = 0;
    if (HttpGet(port, "/progress", &body, &http_status, &err)) {
      ++progress_polls;
      progress_ok &= http_status == 200 && LintBody(body, "/progress");
      // The campaign_start event is delivered asynchronously, so only
      // snapshots taken after it carry the trial total.
      if (running.load() &&
          body.find("\"trials_total\":80") != std::string::npos &&
          body.find("\"finished\":false") != std::string::npos)
        saw_live_progress = true;
    }
    if (HttpGet(port, "/metrics", &body, &http_status, &err))
      metrics_ok &= http_status == 200 && LintBody(body, "/metrics");
    if (HttpGet(port, "/heatmap", &body, &http_status, &err))
      heatmap_ok &= http_status == 200 && LintBody(body, "/heatmap");
    if (HttpGet(port, "/events?tail=5", &body, &http_status, &err))
      events_ok &= http_status == 200 && LintBody(body, "/events");
  } while (running.load());
  campaign.join();

  Check(progress_polls > 0, "polled /progress during the campaign");
  Check(saw_live_progress, "observed an unfinished /progress snapshot");
  Check(progress_ok, "/progress responses are valid JSON");
  Check(metrics_ok, "/metrics responses are valid JSON");
  Check(heatmap_ok, "/heatmap responses are valid JSON");
  Check(events_ok, "/events responses are valid JSON");

  // Terminal state: the journal has been flushed by RunCampaign, so the
  // server's final /progress must agree with the result.
  {
    std::string body;
    int http_status = 0;
    Check(HttpGet(port, "/progress", &body, &http_status, &err) &&
              http_status == 200 &&
              body.find("\"finished\":true") != std::string::npos &&
              body.find("\"trials_done\":80") != std::string::npos,
          "final /progress reports the finished campaign");
    Check(HttpGet(port, "/metrics", &body, &http_status, &err) &&
              body.find("\"campaign.trials\"") != std::string::npos,
          "/metrics serves the campaign counter snapshot");
    Check(HttpGet(port, "/heatmap", &body, &http_status, &err) &&
              body.find("\"trials\":80") != std::string::npos,
          "/heatmap aggregated all 80 trials");
    Check(HttpGet(port, "/nope", &body, &http_status, &err) &&
              http_status == 404,
          "unknown endpoint returns 404");
  }

  // The live heatmap's category ordering equals the Figure 8 ordering
  // computed from the campaign result itself (failures desc, name asc) —
  // via the same post-hoc builder tfi --heatmap-json uses.
  {
    const obs::VulnerabilityHeatmap hm = BuildHeatmap(result);
    std::vector<std::pair<std::uint64_t, std::string>> expect;
    for (int c = 0; c < kNumStateCats; ++c) {
      const auto cat = static_cast<StateCat>(c);
      if (result.TrialsForCat(cat) == 0) continue;
      const auto by = result.ByOutcomeForCat(cat);
      expect.emplace_back(by[static_cast<int>(Outcome::kSdc)] +
                              by[static_cast<int>(Outcome::kTerminated)],
                          StateCatName(cat));
    }
    std::sort(expect.begin(), expect.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    const auto shares = hm.CategoryContributions();
    bool same = shares.size() == expect.size();
    for (std::size_t i = 0; same && i < shares.size(); ++i)
      same = expect[i].second == StateCatName(shares[i].cat) &&
             expect[i].first == shares[i].failures;
    Check(same, "heatmap category order matches Figure 8 computation");

    std::ostringstream json;
    hm.WriteJson(json, spec.workload);
    Check(LintBody(json.str(), "heatmap.json"), "heatmap JSON export parses");
  }

  status.Stop();
  journal.RemoveSink(&events_sink);
  events_out.close();

  // The journal file: header first, every line valid JSON, campaign
  // bracketed, one trial_done per trial.
  {
    std::ifstream in(events_path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    bool parses = !lines.empty();
    for (const std::string& l : lines) parses &= LintBody(l, "events.jsonl");
    Check(parses, "every events.jsonl line parses as JSON");
    Check(!lines.empty() &&
              lines.front().find("\"type\":\"header\"") != std::string::npos,
          "events.jsonl starts with the schema header");
    int trial_done = 0;
    for (const std::string& l : lines)
      if (l.find("\"ev\":\"trial_done\"") != std::string::npos) ++trial_done;
    Check(trial_done == 80, "events.jsonl has one trial_done per trial");
    Check(!lines.empty() && lines.back().find("\"ev\":\"campaign_finish\"") !=
                                std::string::npos,
          "events.jsonl ends with campaign_finish");
  }

  std::printf("telemetry_smoke: %s\n", g_failures ? "FAILED" : "PASSED");
  return g_failures ? 1 : 0;
}
