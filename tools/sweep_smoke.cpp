// sensitivity_smoke — end-to-end geometry-sweep determinism verification.
//
// Runs the 3-point "smoke" suite in-process against private cache
// directories and proves the sweep contract:
//   1. a cold sweep runs every point live and lands one results-cache
//      entry per geometry (specs differing only in core shape used to
//      collide before CacheKey hashed the geometry fields);
//   2. jobs=1 and jobs=4 live sweeps export byte-identical JSON and CSV;
//   3. a rerun is served entirely from the per-point cache and its JSON is
//      still byte-identical to the live run (occupancy re-recorded from
//      the deterministic golden run).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include "inject/sweep.h"

using namespace tfsim;

namespace {

int Fail(const char* what) {
  std::fprintf(stderr, "sensitivity_smoke: FAIL: %s\n", what);
  return 1;
}

std::string JsonOf(const SweepResult& r) {
  std::ostringstream os;
  WriteSweepJson(r, os);
  return os.str();
}

std::string CsvOf(const SweepResult& r) {
  std::ostringstream os;
  WriteSweepCsv(r, os);
  return os.str();
}

std::string FreshCacheDir(const char* leaf) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / leaf).string();
  std::filesystem::remove_all(dir);
  ::setenv("TFI_CACHE_DIR", dir.c_str(), 1);
  return dir;
}

std::size_t CacheEntries(const std::string& dir) {
  std::size_t n = 0;
  if (!std::filesystem::exists(dir)) return 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().extension() == ".txt") ++n;
  return n;
}

}  // namespace

int main() {
  SweepSpec spec;
  spec.suite = "smoke";
  spec.trials = 24;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;

  const std::vector<GeometryPoint> points = ExpandSweep(spec);
  if (points.size() != 3) return Fail("smoke suite is not 3 points");

  CampaignOptions opt;
  opt.verbose = false;
  opt.jobs = 1;

  // Cold sweep at jobs=1: every point live, one cache entry per geometry.
  const std::string dir1 = FreshCacheDir("tfi_sensitivity_smoke_1");
  const SweepResult r1 = RunSweep(spec, "", opt);
  if (r1.points.size() != points.size())
    return Fail("sweep dropped a point");
  for (const SweepPointResult& p : r1.points)
    if (p.from_cache) return Fail("cold sweep was served from the cache");
  if (CacheEntries(dir1) != points.size())
    return Fail(
        "geometry points did not land distinct cache entries (CacheKey "
        "must hash the core geometry)");

  // Cold sweep at jobs=4 in a second cache: byte-identical exports.
  (void)FreshCacheDir("tfi_sensitivity_smoke_4");
  CampaignOptions opt4 = opt;
  opt4.jobs = 4;
  const SweepResult r4 = RunSweep(spec, "", opt4);
  if (JsonOf(r4) != JsonOf(r1))
    return Fail("jobs=4 sweep JSON differs from jobs=1");
  if (CsvOf(r4) != CsvOf(r1))
    return Fail("jobs=4 sweep CSV differs from jobs=1");

  // Rerun against the first cache: all points cached, JSON unchanged.
  ::setenv("TFI_CACHE_DIR", dir1.c_str(), 1);
  const SweepResult r2 = RunSweep(spec, "", opt);
  for (const SweepPointResult& p : r2.points)
    if (!p.from_cache) return Fail("rerun point missed the results cache");
  if (JsonOf(r2) != JsonOf(r1))
    return Fail("cached sweep JSON differs from the live run");

  std::printf(
      "sensitivity_smoke: OK (%zu points; live jobs=1 == live jobs=4 == "
      "cached, %zu cache entries)\n",
      r1.points.size(), CacheEntries(dir1));
  return 0;
}
