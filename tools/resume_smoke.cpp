// campaign_resume_smoke — end-to-end checkpoint/resume verification.
//
// Interrupts a multi-worker campaign mid-flight (cancellation requested
// from inside the trial loop, exactly as tfi's SIGINT handler does),
// verifies a checkpoint journal was flushed, resumes the campaign at a
// different worker count, and requires the resumed result to be
// byte-identical to an uninterrupted reference run. The ctest registration
// forces a tiny checkpoint interval through TFI_CHECKPOINT_EVERY, which
// overrides CampaignOptions::checkpoint_every on any binary.
//
//   campaign_resume_smoke [workload] [--trials N] [--cancel-at N]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "inject/cache.h"
#include "inject/campaign.h"
#include "util/argparse.h"
#include "util/cancel.h"

using namespace tfsim;

namespace {

int Fail(const char* what) {
  std::fprintf(stderr, "campaign_resume_smoke: FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t trials = 30, cancel_at = 13;
  ArgParser p;
  p.AddInt("trials", &trials, "campaign size");
  p.AddInt("cancel-at", &cancel_at, "trial index whose start requests cancel");
  if (!p.Parse(argc, argv) || p.positional().size() > 1) {
    std::fprintf(stderr, "campaign_resume_smoke: %s\n%s", p.error().c_str(),
                 p.Help().c_str());
    return 2;
  }

  // A private cache dir so the journal under test can't collide with a real
  // cache, and so reruns start clean.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tfi_resume_smoke").string();
  std::filesystem::remove_all(dir);
  ::setenv("TFI_CACHE_DIR", dir.c_str(), 1);

  CampaignSpec spec;
  spec.workload = p.positional().empty() ? "gzip" : p.positional()[0];
  spec.trials = static_cast<int>(trials);
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;

  CampaignOptions base;
  base.verbose = false;
  base.use_cache = false;

  const CampaignResult reference = RunCampaign(spec, base);
  if (reference.trials.size() != static_cast<std::size_t>(trials))
    return Fail("reference run has the wrong trial count");

  // Interrupted run: requesting cancellation when trial `cancel_at` starts
  // drains the pool somewhere past that index — an arbitrary interruption
  // point, which is the property under test.
  CancellationToken cancel;
  CampaignOptions interrupted = base;
  interrupted.jobs = 2;
  interrupted.checkpoint_every = 10;  // TFI_CHECKPOINT_EVERY overrides
  interrupted.cancel = &cancel;
  interrupted.trial_fault_hook = [&cancel, cancel_at](std::size_t i) {
    if (i == static_cast<std::size_t>(cancel_at)) cancel.Request();
  };
  const CampaignResult partial = RunCampaign(spec, interrupted);
  if (!partial.interrupted) return Fail("campaign was not interrupted");
  if (partial.trials.empty() || partial.trials.size() >= reference.trials.size())
    return Fail("interruption left no meaningful completed prefix");
  const auto journal = LoadCampaignCheckpoint(spec);
  if (!journal) return Fail("no checkpoint journal after interruption");
  if (journal->size() != partial.trials.size())
    return Fail("journal length disagrees with the partial result");

  // Resume at a different worker count; records must be byte-identical to
  // the uninterrupted run's.
  CampaignOptions resume = base;
  resume.jobs = 3;
  resume.checkpoint_every = 10;
  const CampaignResult resumed = RunCampaign(spec, resume);
  if (resumed.interrupted) return Fail("resumed run reports interrupted");
  if (resumed.trials.size() != reference.trials.size())
    return Fail("resumed run has the wrong trial count");
  for (std::size_t i = 0; i < reference.trials.size(); ++i) {
    const TrialRecord& a = reference.trials[i];
    const TrialRecord& b = resumed.trials[i];
    if (a.outcome != b.outcome || a.mode != b.mode || a.cat != b.cat ||
        a.storage != b.storage || a.cycles != b.cycles ||
        a.valid_instrs != b.valid_instrs || a.inflight != b.inflight)
      return Fail("resumed record differs from the uninterrupted run");
  }
  if (resumed.spec.CacheKey() != reference.spec.CacheKey())
    return Fail("cache key changed across resume");
  if (std::filesystem::exists(CampaignCheckpointPath(spec)))
    return Fail("journal not removed after completion");

  std::printf(
      "campaign_resume_smoke: OK (%zu trials, interrupted at %zu, resumed "
      "byte-identical)\n",
      reference.trials.size(), partial.trials.size());
  std::filesystem::remove_all(dir);
  return 0;
}
