// Differential fuzzer driver: generate N random trap-free programs per
// shape (see src/check/progfuzz.h), run each on the detailed core in
// lockstep with the functional simulator with per-cycle invariant checking,
// and greedily shrink any failing case before printing it.
//
//   fuzz --seeds 200                 # 200 seeds, every shape
//   fuzz --seeds 50 --shape store    # store-heavy programs only
//   fuzz --seed-base 1000 --print    # different seed range, echo sources
//   fuzz --seeds 25 --rob 16 --lq 4 --sq 4   # non-default core geometry
//
// TFI_SMOKE_SEEDS overrides --seeds (env wins, like TFI_CHECKPOINT_EVERY),
// so CI can deepen the pinned `fuzz_smoke` ctest without editing CMake.
//
// Exit code is the number of failing cases (0 = clean sweep).
#include <cstdio>
#include <string>
#include <vector>

#include "check/fuzz_harness.h"
#include "check/progfuzz.h"
#include "uarch/config.h"
#include "util/argparse.h"
#include "util/env.h"

using namespace tfsim;
using namespace tfsim::check;

int main(int argc, char** argv) {
  std::int64_t seeds = 25;
  std::int64_t seed_base = 0;
  std::int64_t cycles = 15000;
  std::string shape_name;
  bool no_check = false;
  bool no_shrink = false;
  bool print = false;
  bool quiet = false;
  // Core geometry overrides (0 = keep the CoreConfig default), so the
  // differential fuzzer exercises non-default shapes too.
  CoreConfig geo;
  std::int64_t rob = 0, sched = 0, lq = 0, sq = 0, pregs = 0;
  ArgParser ap;
  ap.AddInt("seeds", &seeds, "seeds per shape");
  ap.AddInt("seed-base", &seed_base, "first seed value");
  ap.AddInt("cycles", &cycles, "lockstep cycles per case");
  ap.AddStr("shape", &shape_name,
            "only this shape (mixed|alu|store|branch|mem)");
  ap.AddInt("rob", &rob, "ROB entries (0 = default)");
  ap.AddInt("sched", &sched, "scheduler entries (0 = default)");
  ap.AddInt("lq", &lq, "load-queue entries (0 = default)");
  ap.AddInt("sq", &sq, "store-queue entries (0 = default)");
  ap.AddInt("pregs", &pregs, "physical registers (0 = default)");
  ap.AddFlag("no-check", &no_check, "disable the invariant checker");
  ap.AddFlag("no-shrink", &no_shrink, "skip shrinking failing cases");
  ap.AddFlag("print", &print, "echo each generated program");
  ap.AddFlag("quiet", &quiet, "only report failures and the final tally");
  if (!ap.Parse(argc, argv) || !ap.positional().empty()) {
    std::fprintf(stderr, "%s\nusage: fuzz [flags]\n%s",
                 ap.error().empty() ? "unexpected positional argument"
                                    : ap.error().c_str(),
                 ap.Help().c_str());
    return 2;
  }
  seeds = EnvInt("TFI_SMOKE_SEEDS", seeds);
  if (seeds < 1) seeds = 1;

  std::vector<FuzzShape> shapes;
  if (shape_name.empty()) {
    shapes = AllFuzzShapes();
  } else if (const auto sh = FuzzShapeFromName(shape_name)) {
    shapes = {*sh};
  } else {
    std::fprintf(stderr, "unknown --shape '%s' (mixed|alu|store|branch|mem)\n",
                 shape_name.c_str());
    return 2;
  }

  FuzzRunOptions opt;
  opt.cycles = static_cast<std::uint64_t>(cycles);
  opt.check_invariants = !no_check;
  if (rob > 0) geo.rob_entries = static_cast<int>(rob);
  if (sched > 0) geo.sched_entries = static_cast<int>(sched);
  if (lq > 0) geo.lq_entries = static_cast<int>(lq);
  if (sq > 0) geo.sq_entries = static_cast<int>(sq);
  if (pregs > 0) geo.phys_regs = static_cast<int>(pregs);
  if (const std::vector<ConfigIssue> issues = geo.Validate();
      !issues.empty()) {
    for (const ConfigIssue& i : issues)
      std::fprintf(stderr, "fuzz: invalid geometry: %s: %s\n",
                   i.field.c_str(), i.message.c_str());
    return 2;
  }
  opt.core = geo;

  int failures = 0;
  std::uint64_t total_retired = 0;
  int cases = 0;
  for (const FuzzShape sh : shapes) {
    for (std::int64_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed =
          static_cast<std::uint64_t>(seed_base + s) * 0x9E3779B97F4A7C15ULL +
          17;
      const FuzzProgram prog = GenerateFuzzProgram(seed, sh);
      if (print) std::printf("--- shape=%s seed=%lld ---\n%s\n",
                             FuzzShapeName(sh), (long long)(seed_base + s),
                             prog.Source().c_str());
      const FuzzCaseResult r = RunLockstep(prog.Source(), opt);
      ++cases;
      total_retired += r.retired;
      if (r.ok) {
        if (!quiet)
          std::printf("[%-6s seed %4lld] ok: %llu retires compared\n",
                      FuzzShapeName(sh), (long long)(seed_base + s),
                      (unsigned long long)r.retired);
        continue;
      }
      ++failures;
      std::printf("[%-6s seed %4lld] FAIL: %s\n", FuzzShapeName(sh),
                  (long long)(seed_base + s), r.failure.c_str());
      if (!no_shrink) {
        const ShrinkResult sr = ShrinkFailure(prog, opt);
        std::size_t kept = 0;
        for (const bool e : sr.enabled) kept += e ? 1 : 0;
        std::printf(
            "  shrunk to %zu/%zu blocks in %d runs; failure: %s\n"
            "--- shrunk reproducer ---\n%s-------------------------\n",
            kept, sr.enabled.size(), sr.runs, sr.failure.c_str(),
            sr.source.c_str());
      }
    }
  }
  std::printf("fuzz: %d/%d cases failed, %llu retires compared%s\n", failures,
              cases, (unsigned long long)total_retired,
              no_check ? " (invariant checker off)" : "");
  return failures;
}
