// chaos_smoke — end-to-end resilience verification under injected faults.
//
// Three phases, each compared record-for-record against a clean reference:
//
//   1. Durability chaos: every cache/checkpoint/atomic-write seam armed with
//      intermittent failpoint errors (TFI_FAILPOINTS syntax via
//      fail::ConfigureFromSpec). The campaign must retry/degrade and still
//      produce byte-identical records at --jobs 1 and --jobs 4.
//   2. Watchdog containment: a trial hook that wedges past the
//      trial_timeout_ms deadline must be quarantined as a timeout while
//      every other trial's record survives unchanged.
//   3. Fork isolation (POSIX): a trial hook that SIGKILLs the worker under
//      --isolate-trials must be contained as a crash quarantine, the worker
//      respawned, and the surviving records byte-identical.
//
// Registered as the `chaos_smoke` ctest; also built under -DTFI_SANITIZE=thread
// so the supervisor/watchdog paths get TSan coverage.
//
//   chaos_smoke [workload] [--trials N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "inject/campaign.h"
#include "inject/isolate.h"
#include "util/argparse.h"
#include "util/failpoint.h"

#ifndef _WIN32
#include <csignal>
#endif

using namespace tfsim;

namespace {

int Fail(const char* what) {
  std::fprintf(stderr, "chaos_smoke: FAIL: %s\n", what);
  return 1;
}

bool SameRecord(const TrialRecord& a, const TrialRecord& b) {
  return a.outcome == b.outcome && a.mode == b.mode && a.cat == b.cat &&
         a.storage == b.storage && a.cycles == b.cycles &&
         a.valid_instrs == b.valid_instrs && a.inflight == b.inflight;
}

// All records identical except the quarantined index `skip` (SIZE_MAX = none).
bool SurvivorsMatch(const CampaignResult& got, const CampaignResult& ref,
                    std::size_t skip) {
  if (got.trials.size() != ref.trials.size()) return false;
  for (std::size_t i = 0; i < ref.trials.size(); ++i) {
    if (i == skip) continue;
    if (!SameRecord(got.trials[i], ref.trials[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t trials = 24;
  ArgParser p;
  p.AddInt("trials", &trials, "campaign size");
  if (!p.Parse(argc, argv) || p.positional().size() > 1) {
    std::fprintf(stderr, "chaos_smoke: %s\n%s", p.error().c_str(),
                 p.Help().c_str());
    return 2;
  }

  // Private cache dir: the durability seams under chaos must not touch a
  // real cache, and reruns must start clean.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tfi_chaos_smoke").string();
  std::filesystem::remove_all(dir);
  ::setenv("TFI_CACHE_DIR", dir.c_str(), 1);

  CampaignSpec spec;
  spec.workload = p.positional().empty() ? "gzip" : p.positional()[0];
  spec.trials = static_cast<int>(trials);
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;

  CampaignOptions base;
  base.verbose = false;
  base.use_cache = false;

  fail::Reset();
  const CampaignResult reference = RunCampaign(spec, base);
  if (reference.trials.size() != static_cast<std::size_t>(trials))
    return Fail("reference run has the wrong trial count");
  if (!reference.quarantined.empty())
    return Fail("reference run quarantined trials");

  // Phase 1: durability chaos. Intermittent failures on every seam a
  // campaign persists through; the engine must retry/degrade, never corrupt.
  for (int jobs : {1, 4}) {
    std::filesystem::remove_all(dir);
    std::string err;
    if (!fail::ConfigureFromSpec(
            "fs.atomic_write=error@1in3;cache.load=error@1in2;"
            "cache.store=error@1in2;ckpt.load=error@1in2;ckpt.store=error@1in2",
            &err)) {
      std::fprintf(stderr, "chaos_smoke: bad spec: %s\n", err.c_str());
      return 1;
    }
    CampaignOptions chaos = base;
    chaos.use_cache = true;
    chaos.jobs = jobs;
    chaos.checkpoint_every = 3;
    const CampaignResult stormy = RunCampaign(spec, chaos);
    fail::Reset();
    if (stormy.interrupted) return Fail("durability chaos: run interrupted");
    if (!stormy.quarantined.empty())
      return Fail("durability chaos: I/O failures leaked into trial records");
    if (!SurvivorsMatch(stormy, reference, static_cast<std::size_t>(-1)))
      return Fail("durability chaos: records differ from the clean reference");
  }

  // Phase 2: watchdog. A wedged trial must become a timeout quarantine; the
  // rest of the campaign must be untouched.
  {
    std::filesystem::remove_all(dir);
    const std::size_t victim = 2;
    CampaignOptions hang = base;
    hang.trial_timeout_ms = 50;
    hang.trial_fault_hook = [victim](std::size_t i) {
      if (i == victim) {
        const auto until =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(150);
        while (std::chrono::steady_clock::now() < until) {
        }
      }
    };
    const CampaignResult hung = RunCampaign(spec, hang);
    if (hung.quarantined.size() != 1 || hung.quarantined[0].index != victim)
      return Fail("watchdog: hung trial was not quarantined");
    if (hung.quarantined[0].reason != QuarantinedTrial::Reason::kTimeout)
      return Fail("watchdog: quarantine reason is not timeout");
    if (!SurvivorsMatch(hung, reference, victim))
      return Fail("watchdog: surviving records differ from the reference");
  }

#ifndef _WIN32
  // Phase 3: fork isolation. A trial that kills its worker process must be
  // contained as a crash quarantine with the worker respawned.
  if (IsolationSupported()) {
    std::filesystem::remove_all(dir);
    const std::size_t victim = 4;
    CampaignOptions iso = base;
    iso.isolate_trials = true;
    iso.jobs = 2;
    iso.trial_fault_hook = [victim](std::size_t i) {
      if (i == victim) std::raise(SIGKILL);
    };
    const CampaignResult crashed = RunCampaign(spec, iso);
    if (crashed.quarantined.size() != 1 ||
        crashed.quarantined[0].index != victim)
      return Fail("isolation: crashing trial was not quarantined");
    if (crashed.quarantined[0].reason != QuarantinedTrial::Reason::kCrash)
      return Fail("isolation: quarantine reason is not crash");
    if (!SurvivorsMatch(crashed, reference, victim))
      return Fail("isolation: surviving records differ from the reference");
  }
#endif

  std::printf(
      "chaos_smoke: OK (%zu trials; durability chaos, watchdog, and fork "
      "isolation all byte-identical to the clean run)\n",
      reference.trials.size());
  std::filesystem::remove_all(dir);
  return 0;
}
