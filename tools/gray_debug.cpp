#include <cstdio>
#include <map>
#include <string>

#include "inject/golden.h"
#include "inject/trial.h"
#include "util/rng.h"
#include "workloads/workloads.h"

using namespace tfsim;

int main(int argc, char** argv) {
  const char* wl = argc > 1 ? argv[1] : "gzip";
  const int trials = argc > 2 ? std::atoi(argv[2]) : 600;
  const bool include_ram = argc > 3 ? std::atoi(argv[3]) != 0 : true;
  CoreConfig cfg;
  GoldenSpec gs; gs.warmup = 20000; gs.points = 4;
  Program prog = BuildWorkload(WorkloadByName(wl), kCampaignIters);
  auto golden = RecordGolden(cfg, prog, gs);
  TrialRunner runner(golden);
  Rng rng(1);
  const std::uint64_t bits =
      runner.core().registry().InjectableBits(include_ram);
  std::map<std::string, std::pair<int,int>> byname;  // gray, total
  std::map<std::string, std::pair<int,int>> fails;
  for (int t = 0; t < trials; ++t) {
    TrialSpec ts;
    ts.checkpoint = (int)rng.NextBelow(gs.points);
    ts.offset = rng.NextBelow(gs.offset_max);
    ts.bit_index = rng.NextBelow(bits);
    ts.include_ram = include_ram;
    const BitLocation loc =
        runner.core().registry().LocateBit(ts.bit_index, include_ram);
    TrialRecord r = runner.Run(ts).record;
    auto& e = byname[loc.name];
    e.second++;
    if (r.outcome == Outcome::kGrayArea) e.first++;
    auto& f = fails[loc.name];
    f.second++;
    if (r.outcome == Outcome::kSdc || r.outcome == Outcome::kTerminated) f.first++;
  }
  std::printf("--- gray by field ---\n");
  for (auto& [name, e] : byname)
    if (e.first) std::printf("%-22s gray=%d / %d\n", name.c_str(), e.first, e.second);
  std::printf("--- failures by field ---\n");
  for (auto& [name, f] : fails)
    if (f.first) std::printf("%-22s fail=%d / %d\n", name.c_str(), f.first, f.second);
  return 0;
}
