#include <cstdio>
#include "soft/soft_inject.h"
using namespace tfsim;
int main(int argc, char** argv) {
  SoftCampaignSpec spec;
  spec.workload = argc > 1 ? argv[1] : "gzip";
  spec.trials = argc > 2 ? std::atoi(argv[2]) : 100;
  spec.iters = 12;
  for (int m = 0; m < kNumSoftFaultModels; ++m) {
    spec.model = static_cast<SoftFaultModel>(m);
    auto r = RunSoftCampaign(spec, false);
    std::printf("%-14s", SoftFaultModelName(spec.model));
    for (int o = 0; o < kNumSoftOutcomes; ++o)
      std::printf("  %s=%4.1f%%", SoftOutcomeName(static_cast<SoftOutcome>(o)),
                  100.0 * r.Rate(static_cast<SoftOutcome>(o)).value);
    std::printf("  cfdiv=%llu\n", (unsigned long long)r.state_ok_with_divergence);
  }
  return 0;
}
