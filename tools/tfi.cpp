// tfi — command-line driver for the transient-fault-injection toolkit.
//
//   tfi run <workload|file.s> [--cycles N] [--trace N]   run on the pipeline
//   tfi exec <workload|file.s> [--iters N]               functional execution
//   tfi campaign <workload> [--trials N] [--latches-only] [--protect]
//                 [--flips N] [--adjacent] [--jobs N]    one injection campaign
//                 [--window N] (observation window in cycles; default 10000,
//                 env TFI_WINDOW; part of the results-cache key)
//                 [--fast-path|--no-fast-path] (inject-point snapshotting +
//                 early-convergence cutoff; fast is the default and produces
//                 byte-identical results — --no-fast-path replays every
//                 trial from its checkpoint)
//       telemetry: [--metrics-json FILE] [--prop-trace FILE]
//                  [--chrome-trace FILE] [--progress]
//                  [--events-jsonl FILE] (structured campaign event journal)
//                  [--heatmap-json FILE] [--heatmap-csv FILE] (per-field
//                  vulnerability heatmap)
//                  [--status-port N] (live HTTP/JSON status endpoints
//                  /progress /metrics /heatmap /events on 127.0.0.1;
//                  0 picks an ephemeral port, printed to stderr)
//       resilience: [--checkpoint-every N] (0 disables; SIGINT drains
//                   in-flight trials, flushes the checkpoint + partial
//                   exports, and a rerun resumes from the journal)
//                   [--trial-timeout MS] (watchdog: hung trials quarantine
//                   as Trial Error; env TFI_TRIAL_TIMEOUT overrides)
//                   [--isolate-trials] (forked-worker crash containment;
//                   POSIX only)
//                   TFI_FAILPOINTS=<spec> arms the chaos failpoints
//                   (util/failpoint.h) for fault drills
//
// Exit codes: 0 success; 130 SIGINT (partial results checkpointed); 3 the
// --isolate-trials worker-restart budget was exhausted (remaining trials
// quarantined, result not cached; rerun to resume).
//   tfi soft <workload> <model> [--trials N]             Section 5 campaign
//   tfi inventory [--protect]                            Table 1 state listing
//       audit: [--json] [--coverage] [--check --baseline FILE]
//              [--write-baseline --baseline FILE]
//   tfi asmlint [unit|file.s ...] [--allow FILE]         static program lint
//       [--harden cfc|dup|full]  also statically verify the hardened variant
//   tfi workloads                                        list the suite
//   tfi version                                          build configuration
//
// Unknown --flags are rejected with a usage error (they are never silently
// treated as positional workload names).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/asm/asmlint.h"
#include "analyze/inventory.h"
#include "arch/functional_sim.h"
#include "inject/campaign.h"
#include "inject/report.h"
#include "inject/sweep.h"
#include "obs/chrome_trace.h"
#include "obs/events.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/status_server.h"
#include "soft/harden.h"
#include "soft/soft_inject.h"
#include "uarch/core.h"
#include "util/argparse.h"
#include "util/cancel.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "workloads/workloads.h"

// Active sanitizer configuration, stamped in by CMake from TFI_SANITIZE so
// campaign records always say which instrumentation produced them.
#ifndef TFI_SANITIZE_NAME
#define TFI_SANITIZE_NAME "off"
#endif

namespace tfsim {
namespace {

// SIGINT requests cooperative cancellation: the campaign drains in-flight
// trials, flushes its checkpoint journal, and CmdCampaign still writes the
// partial telemetry exports before exiting with 130. A second Ctrl-C kills
// the process the traditional way (the handler restores SIG_DFL).
CancellationToken g_interrupt;

extern "C" void HandleSigint(int) {
  g_interrupt.Request();
  std::signal(SIGINT, SIG_DFL);
}

struct Args {
  std::vector<std::string> positional;
  std::int64_t cycles = 200000;
  std::int64_t trials = 300;
  std::int64_t iters = 4;
  std::int64_t trace = 0;
  std::int64_t flips = 1;
  std::int64_t jobs = 1;
  std::int64_t checkpoint_every = 250;
  std::int64_t trial_timeout = 0;  // ms; 0 = no watchdog
  bool isolate_trials = false;
  std::int64_t window = 0;  // 0 = GoldenSpec default (or TFI_WINDOW)
  bool fast_path = false;   // accepted for symmetry; fast is the default
  bool no_fast_path = false;
  bool latches_only = false;
  bool protect = false;
  bool adjacent = false;
  // Telemetry exports (campaign subcommand).
  std::string metrics_json;
  std::string prop_trace;
  std::string chrome_trace;
  std::string events_jsonl;
  std::string heatmap_json;
  std::string heatmap_csv;
  std::int64_t status_port = -1;  // -1 = off, 0 = ephemeral
  bool progress = false;
  bool check = false;
  // Geometry sweep (sweep subcommand).
  std::string suite = "default";
  std::string axis;
  std::string sweep_json;
  std::string sweep_csv;
  // Static program lint (asmlint subcommand).
  std::string allow;
  std::string harden;
  // Inventory audit (inventory subcommand).
  bool json = false;
  bool coverage = false;
  bool write_baseline = false;
  std::string baseline;
  // Parse error: first unknown --flag, or a flag missing its value.
  std::string error;
};

ArgParser MakeParser(Args& a) {
  ArgParser p;
  p.AddInt("cycles", &a.cycles, "pipeline cycles to run (run)");
  p.AddInt("trials", &a.trials, "injection trials (campaign, soft)");
  p.AddInt("iters", &a.iters, "workload iterations (run, exec, soft)");
  p.AddInt("trace", &a.trace, "dump the last N pipeline cycles (run)");
  p.AddInt("flips", &a.flips, "bits flipped per trial (campaign)");
  p.AddInt("jobs", &a.jobs,
           "trial-loop worker threads; 0 = all hardware threads (campaign)");
  p.AddInt("checkpoint-every", &a.checkpoint_every,
           "flush a resume journal every N trials; 0 disables (campaign)");
  p.AddInt("trial-timeout", &a.trial_timeout,
           "watchdog deadline per trial in ms; hung trials quarantine as "
           "Trial Error instead of stalling a worker; 0 disables (campaign; "
           "TFI_TRIAL_TIMEOUT overrides)");
  p.AddFlag("isolate-trials", &a.isolate_trials,
            "run trials in forked worker subprocesses so a crashing trial "
            "is contained, recorded and the campaign continues (campaign; "
            "POSIX only)");
  p.AddInt("window", &a.window,
           "trial observation window in cycles; 0 = default 10000 or "
           "TFI_WINDOW (campaign; part of the results-cache key)");
  p.AddFlag("fast-path", &a.fast_path,
            "inject-point snapshotting + early-convergence cutoff (campaign; "
            "the default — results are byte-identical either way)");
  p.AddFlag("no-fast-path", &a.no_fast_path,
            "replay every trial from its checkpoint instead (campaign)");
  p.AddFlag("latches-only", &a.latches_only,
            "inject latches only, not RAMs (campaign)");
  p.AddFlag("protect", &a.protect,
            "enable the Section 4 protection mechanisms");
  p.AddFlag("adjacent", &a.adjacent,
            "extra flips hit adjacent bits (campaign)");
  p.AddStr("metrics-json", &a.metrics_json, "metrics registry export path");
  p.AddStr("prop-trace", &a.prop_trace, "propagation-trace JSONL path");
  p.AddStr("chrome-trace", &a.chrome_trace, "chrome trace-event export path");
  p.AddStr("events-jsonl", &a.events_jsonl,
           "structured campaign event journal path (JSONL)");
  p.AddStr("heatmap-json", &a.heatmap_json,
           "per-field vulnerability heatmap JSON path");
  p.AddStr("heatmap-csv", &a.heatmap_csv,
           "per-field vulnerability heatmap CSV path");
  p.AddInt("status-port", &a.status_port,
           "serve live /progress /metrics /heatmap /events JSON on this "
           "127.0.0.1 port while the campaign runs; 0 = ephemeral");
  p.AddFlag("progress", &a.progress, "periodic trials/sec progress lines");
  p.AddFlag("check", &a.check,
            "run trials with the per-cycle invariant checker; violations "
            "quarantine the trial (campaign; bypasses the results cache). "
            "With inventory: compare against --baseline and fail on drift");
  p.AddStr("suite", &a.suite,
           "geometry suite: default (all axes) or smoke (3 points) (sweep)");
  p.AddStr("axis", &a.axis,
           "restrict the sweep to one axis: rob, sched, lsq, pregs, width "
           "(sweep)");
  p.AddStr("sweep-json", &a.sweep_json,
           "vulnerability-vs-utilization curves JSON path; '-' = stdout "
           "(sweep)");
  p.AddStr("sweep-csv", &a.sweep_csv,
           "per-point per-structure CSV path; '-' = stdout (sweep)");
  p.AddStr("allow", &a.allow, "allowlist of audited exceptions (asmlint)");
  p.AddStr("harden", &a.harden,
           "also verify the hardened variant: cfc, dup or full (asmlint)");
  p.AddFlag("json", &a.json,
            "emit the canonical audit JSON (inventory); sweep curves JSON "
            "on stdout (sweep)");
  p.AddFlag("coverage", &a.coverage,
            "per-mechanism protection coverage table (inventory)");
  p.AddStr("baseline", &a.baseline,
           "pinned inventory JSON for --check/--write-baseline (inventory)");
  p.AddFlag("write-baseline", &a.write_baseline,
            "regenerate the pinned --baseline file (inventory)");
  return p;
}

Args Parse(int argc, char** argv) {
  Args a;
  ArgParser p = MakeParser(a);
  if (!p.Parse(argc, argv, /*begin=*/2))
    a.error = p.error();
  else
    a.positional = p.positional();
  return a;
}

// Opens `path` for writing, exiting with a diagnostic on failure.
std::ofstream OpenExport(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  return out;
}

// Loads a program: a workload name from the suite, or a .s assembly file.
Program LoadProgram(const std::string& what, std::uint64_t iters) {
  if (what.size() > 2 && what.substr(what.size() - 2) == ".s") {
    std::ifstream in(what);
    if (!in) throw std::runtime_error("cannot open " + what);
    std::ostringstream src;
    src << in.rdbuf();
    return Assemble(src.str());
  }
  return BuildWorkload(WorkloadByName(what), iters);
}

// `tfi asmlint`: the static program lint, sharing LoadProgram's
// workload-or-.s-file convention. Exit code = number of findings.
int CmdAsmlint(const Args& a) {
  std::vector<std::string> units = a.positional;
  if (units.empty())
    for (const auto& w : AllWorkloads()) units.push_back(w.name);

  std::vector<analyze::AllowEntry> allow;
  if (!a.allow.empty()) {
    std::ifstream in(a.allow);
    if (!in) throw std::runtime_error("cannot read " + a.allow);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string error;
    if (!analyze::ParseAllowlist(ss.str(), &allow, &error))
      throw std::runtime_error(error);
  }

  std::optional<HardenMode> mode;
  if (!a.harden.empty()) {
    if (a.harden == "cfc") mode = HardenMode::kCfc;
    else if (a.harden == "dup") mode = HardenMode::kDup;
    else if (a.harden == "full") mode = HardenMode::kFull;
    else throw std::runtime_error("unknown --harden mode: " + a.harden);
  }

  std::size_t total = 0;
  for (const std::string& u : units) {
    const std::size_t slash = u.find_last_of('/');
    const std::string unit =
        slash == std::string::npos ? u : u.substr(slash + 1);
    const Program prog = LoadProgram(u, kCampaignIters);
    analyze::AsmLintOptions opt;
    opt.unit = unit;
    std::vector<analyze::AsmFinding> findings =
        analyze::RunAsmLint(analyze::Lift(prog), allow, opt);
    if (mode) {
      const HardenedProgram hp = Harden(prog, *mode);
      const auto hf = VerifyHardened(prog, hp.program, *mode,
                                     unit + "+" + HardenModeName(*mode));
      findings.insert(findings.end(), hf.begin(), hf.end());
    }
    for (const auto& f : findings)
      std::fprintf(stderr, "%s\n", f.Format().c_str());
    total += findings.size();
  }
  const auto unused = analyze::UnusedAllowFindings(allow);
  for (const auto& f : unused)
    std::fprintf(stderr, "%s\n", f.Format().c_str());
  total += unused.size();
  if (total == 0)
    std::printf("asmlint: %zu unit(s) verified\n", units.size());
  else
    std::fprintf(stderr, "asmlint: %zu finding(s)\n", total);
  return static_cast<int>(total);
}

int CmdWorkloads() {
  for (const auto& w : AllWorkloads())
    std::printf("%-8s %s\n", w.name.c_str(), w.description.c_str());
  return 0;
}

int CmdInventory(const Args& a) {
  // Audit modes work on the canonical JSON (deterministic byte-for-byte, so
  // it can be pinned as tools/inventory_baseline.json and diffed in review).
  if (a.json || a.check || a.write_baseline) {
    const std::string json = analyze::BuildInventoryJsonFromCores();
    if (a.json) std::fputs(json.c_str(), stdout);
    if (a.write_baseline) {
      if (a.baseline.empty())
        throw std::runtime_error("--write-baseline needs --baseline FILE");
      auto out = OpenExport(a.baseline);
      out << json;
      std::fprintf(stderr, "wrote inventory baseline to %s\n",
                   a.baseline.c_str());
    }
    if (a.check) {
      if (a.baseline.empty())
        throw std::runtime_error("inventory --check needs --baseline FILE");
      std::ifstream in(a.baseline);
      if (!in) throw std::runtime_error("cannot open " + a.baseline);
      std::ostringstream pinned;
      pinned << in.rdbuf();
      std::string message;
      if (!analyze::CheckInventoryBaseline(json, pinned.str(), &message)) {
        std::fprintf(stderr, "tfi inventory: %s\n", message.c_str());
        return 1;
      }
      std::printf("inventory matches %s\n", a.baseline.c_str());
    }
    return 0;
  }
  CoreConfig cfg;
  if (a.protect) cfg.protect = ProtectionConfig::All();
  Core core(cfg, BuildWorkload(AllWorkloads()[0], kCampaignIters));
  if (a.coverage) {
    if (!a.protect)
      std::fprintf(stderr,
                   "note: --coverage without --protect shows what the "
                   "mechanisms would leave uncovered in this build\n");
    std::printf("%-16s %10s %10s %10s\n", "mechanism", "covered", "uncovered",
                "check bits");
    for (const auto& m :
         analyze::ComputeProtectionCoverage(core.registry().Fields())) {
      std::printf("%-16s %10llu %10llu %10llu\n", m.mechanism.c_str(),
                  (unsigned long long)m.covered_bits,
                  (unsigned long long)m.uncovered_bits,
                  (unsigned long long)m.check_bits);
      for (const auto& f : m.uncovered_fields)
        std::printf("  uncovered: %s\n", f.c_str());
    }
    return 0;
  }
  std::printf("%-14s %10s %10s\n", "category", "latch bits", "RAM bits");
  std::uint64_t lt = 0, rt = 0;
  for (int c = 0; c < kNumStateCats; ++c) {
    const auto inv = core.registry().Inventory(static_cast<StateCat>(c));
    if (inv.latch_bits + inv.ram_bits == 0) continue;
    lt += inv.latch_bits;
    rt += inv.ram_bits;
    std::printf("%-14s %10llu %10llu\n",
                StateCatName(static_cast<StateCat>(c)),
                (unsigned long long)inv.latch_bits,
                (unsigned long long)inv.ram_bits);
  }
  std::printf("%-14s %10llu %10llu\n", "total", (unsigned long long)lt,
              (unsigned long long)rt);
  return 0;
}

int CmdVersion() {
  std::printf("tfi (transient-fault-injection toolkit)\n");
  std::printf("  sanitizer: %s\n", TFI_SANITIZE_NAME);
#ifdef NDEBUG
  std::printf("  assertions: off\n");
#else
  std::printf("  assertions: on\n");
#endif
  return 0;
}

int CmdRun(const Args& a) {
  const Program prog = LoadProgram(a.positional.at(0), a.iters);
  Core core(CoreConfig{}, prog);
  for (std::int64_t c = 0; c < a.cycles && !core.exited(); ++c) {
    if (a.trace > 0 && c >= a.cycles - a.trace) core.DumpPipeline(std::cout);
    core.Cycle();
    if (core.halted_exception() != Exception::kNone) {
      std::printf("exception: %s\n", ExceptionName(core.halted_exception()));
      return 1;
    }
  }
  const auto& st = core.stats();
  std::printf(
      "cycles=%llu retired=%llu IPC=%.2f bp=%.1f%% d$miss=%llu "
      "mispredicts=%llu flushes=%llu%s\n",
      (unsigned long long)st.cycles, (unsigned long long)st.retired, st.Ipc(),
      st.branches ? 100.0 * (1.0 - (double)st.mispredicts / (double)st.branches) : 0.0,
      (unsigned long long)st.dcache_misses,
      (unsigned long long)st.mispredicts,
      (unsigned long long)st.full_flushes,
      core.exited() ? " [exited]" : "");
  if (!core.output().empty()) {
    std::printf("output (%zu bytes):", core.output().size());
    for (std::size_t i = 0; i < core.output().size() && i < 32; ++i)
      std::printf(" %02x", core.output()[i]);
    std::printf("\n");
  }
  return 0;
}

int CmdExec(const Args& a) {
  const Program prog = LoadProgram(a.positional.at(0), a.iters);
  FunctionalSim sim(prog);
  sim.Run(1ULL << 33);
  std::printf("instructions=%llu %s exit=%llu output=%zu bytes\n",
              (unsigned long long)sim.InsnCount(),
              sim.state().exited ? "[exited]"
                                 : ExceptionName(sim.pending_exception()),
              (unsigned long long)sim.state().exit_code,
              sim.state().output.size());
  return sim.state().exited ? 0 : 1;
}

int CmdCampaign(const Args& a) {
  CampaignSpec spec;
  spec.workload = a.positional.at(0);
  spec.trials = static_cast<int>(a.trials);
  spec.include_ram = !a.latches_only;
  spec.flips = static_cast<int>(a.flips);
  spec.adjacent = a.adjacent;
  if (a.protect) spec.core.protect = ProtectionConfig::All();
  // Observation window: flag wins, then TFI_WINDOW, then the GoldenSpec
  // default. GoldenSpec::window is the single source of truth downstream
  // (trial classification, fast-path planning, the cache key).
  const std::int64_t window = a.window > 0 ? a.window : EnvInt("TFI_WINDOW", 0);
  if (window > 0) spec.golden.window = static_cast<std::uint64_t>(window);

  // Observability: attach only the sinks whose export files were requested.
  obs::MetricsRegistry metrics;
  obs::ChromeTraceWriter chrome;
  CampaignOptions opt;
  opt.jobs = static_cast<int>(a.jobs);
  opt.checkpoint_every = static_cast<int>(a.checkpoint_every);
  opt.trial_timeout_ms = a.trial_timeout;
  opt.isolate_trials = a.isolate_trials;
  opt.cancel = &g_interrupt;
  if (!a.metrics_json.empty()) opt.obs.sinks.metrics = &metrics;
  if (!a.chrome_trace.empty()) opt.obs.sinks.chrome = &chrome;
  opt.obs.collect_prop_traces = !a.prop_trace.empty();
  opt.obs.progress = a.progress;
  opt.check_invariants = a.check;
  opt.fast_path = !a.no_fast_path;

  // Event journal: one shared stream feeding the JSONL file sink and the
  // HTTP status server (--progress attaches its own consumer inside the
  // campaign). /metrics needs registry snapshots, so the status server
  // implies a metrics registry even without --metrics-json.
  const bool serve = a.status_port >= 0;
  obs::EventJournal journal;
  std::ofstream events_out;
  std::optional<obs::JsonlEventSink> events_sink;
  obs::CampaignStatusServer status;
  if (!a.events_jsonl.empty() || serve) {
    opt.obs.events = &journal;
    if (!a.events_jsonl.empty()) {
      events_out = OpenExport(a.events_jsonl);
      events_sink.emplace(events_out);
      journal.AddSink(&*events_sink);
    }
    if (serve) {
      opt.obs.sinks.metrics = &metrics;
      std::string err;
      if (a.status_port > 65535 ||
          !status.Start(static_cast<std::uint16_t>(a.status_port), journal,
                        &err)) {
        throw std::runtime_error("--status-port: " +
                                 (err.empty() ? "invalid port" : err));
      }
      std::fprintf(stderr, "status server on http://127.0.0.1:%u\n",
                   static_cast<unsigned>(status.port()));
    }
  }

  std::signal(SIGINT, HandleSigint);
  const CampaignResult r = RunCampaign(spec, opt);
  std::signal(SIGINT, SIG_DFL);

  // The campaign flushed the journal before returning; detach our sinks in
  // the reverse order they were attached.
  if (status.running()) status.Stop();
  if (events_sink) {
    journal.RemoveSink(&*events_sink);
    std::fprintf(stderr, "wrote %llu events to %s\n",
                 (unsigned long long)journal.emitted(),
                 a.events_jsonl.c_str());
  }

  if (!a.heatmap_json.empty() || !a.heatmap_csv.empty()) {
    const obs::VulnerabilityHeatmap hm = BuildHeatmap(r);
    if (!a.heatmap_json.empty()) {
      auto out = OpenExport(a.heatmap_json);
      hm.WriteJson(out, spec.workload);
      std::fprintf(stderr, "wrote heatmap (%zu fields) to %s\n",
                   hm.cells().size(), a.heatmap_json.c_str());
    }
    if (!a.heatmap_csv.empty()) {
      auto out = OpenExport(a.heatmap_csv);
      hm.WriteCsv(out);
      std::fprintf(stderr, "wrote heatmap CSV to %s\n", a.heatmap_csv.c_str());
    }
  }

  if (!a.metrics_json.empty()) {
    auto out = OpenExport(a.metrics_json);
    metrics.WriteJson(out);
    std::fprintf(stderr, "wrote metrics to %s\n", a.metrics_json.c_str());
  }
  if (!a.prop_trace.empty()) {
    auto out = OpenExport(a.prop_trace);
    WritePropTraceJsonl(r, out);
    std::fprintf(stderr, "wrote %zu propagation traces to %s\n",
                 r.prop_traces.size(), a.prop_trace.c_str());
  }
  if (!a.chrome_trace.empty()) {
    auto out = OpenExport(a.chrome_trace);
    chrome.WriteTo(out);
    std::fprintf(stderr,
                 "wrote chrome trace to %s (open in https://ui.perfetto.dev "
                 "or chrome://tracing)\n",
                 a.chrome_trace.c_str());
  }

  const auto o = r.ByOutcome();
  const double n = static_cast<double>(r.trials.size());
  std::printf("workload=%s trials=%zu ipc=%.2f sanitizer=%s\n",
              spec.workload.c_str(), r.trials.size(), r.golden_ipc,
              TFI_SANITIZE_NAME);
  for (int i = 0; i < kNumOutcomes; ++i)
    if (o[i] || static_cast<Outcome>(i) != Outcome::kTrialError)
      std::printf("  %-12s %5.1f%%\n", OutcomeName(static_cast<Outcome>(i)),
                  n > 0 ? 100.0 * o[i] / n : 0.0);
  const auto m = r.ByFailureMode();
  for (int i = 1; i < kNumFailureModes; ++i)
    if (m[i])
      std::printf("    %-8s %llu\n", FailureModeName(static_cast<FailureMode>(i)),
                  (unsigned long long)m[i]);
  for (const auto& q : r.quarantined)
    std::fprintf(stderr, "  quarantined trial %llu [%s]: %s\n",
                 (unsigned long long)q.index, QuarantineReasonName(q.reason),
                 q.message.c_str());
  if (r.interrupted) {
    std::fprintf(stderr,
                 "interrupted: %zu/%d trials completed%s; rerun the same "
                 "command to resume\n",
                 r.trials.size(), spec.trials,
                 a.checkpoint_every > 0 ? " (checkpoint saved)" : "");
    return 130;
  }
  if (r.containment_exhausted) {
    std::fprintf(stderr,
                 "containment exhausted: worker restart budget spent after "
                 "%llu respawns; un-run trials were quarantined and the "
                 "result was NOT cached — rerun to resume from the "
                 "checkpoint\n",
                 (unsigned long long)r.worker_restarts);
    return 3;
  }
  return 0;
}

int CmdSoft(const Args& a) {
  SoftCampaignSpec spec;
  spec.workload = a.positional.at(0);
  spec.trials = static_cast<int>(a.trials);
  spec.iters = static_cast<std::uint64_t>(a.iters > 4 ? a.iters : 8);
  const std::string model = a.positional.at(1);
  bool found = false;
  for (int m = 0; m < kNumSoftFaultModels; ++m) {
    if (model == SoftFaultModelName(static_cast<SoftFaultModel>(m))) {
      spec.model = static_cast<SoftFaultModel>(m);
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown model '%s'; options:", model.c_str());
    for (int m = 0; m < kNumSoftFaultModels; ++m)
      std::fprintf(stderr, " %s", SoftFaultModelName(static_cast<SoftFaultModel>(m)));
    std::fprintf(stderr, "\n");
    return 2;
  }
  const SoftCampaignResult r = RunSoftCampaign(spec);
  for (int o = 0; o < kNumSoftOutcomes; ++o)
    std::printf("  %-11s %5.1f%%\n", SoftOutcomeName(static_cast<SoftOutcome>(o)),
                100.0 * r.Rate(static_cast<SoftOutcome>(o)).value);
  return 0;
}

// tfi sweep [workload] — geometry sensitivity sweep. Expands --suite
// (optionally restricted to --axis) into per-point campaigns run through the
// ordinary machinery, so the per-point results cache, checkpoint/resume and
// byte-identical records at any --jobs value all carry over. The exports
// join per-structure failure rates with golden-run occupancy into
// vulnerability-vs-utilization curves.
int CmdSweep(const Args& a) {
  SweepSpec spec;
  if (!a.positional.empty()) spec.workload = a.positional[0];
  spec.suite = a.suite;
  spec.trials = static_cast<int>(a.trials);
  spec.include_ram = !a.latches_only;
  spec.flips = static_cast<int>(a.flips);
  spec.adjacent = a.adjacent;
  if (a.protect) spec.base.protect = ProtectionConfig::All();
  const std::int64_t window = a.window > 0 ? a.window : EnvInt("TFI_WINDOW", 0);
  if (window > 0) spec.golden.window = static_cast<std::uint64_t>(window);

  CampaignOptions opt;
  opt.jobs = static_cast<int>(a.jobs);
  opt.checkpoint_every = static_cast<int>(a.checkpoint_every);
  opt.trial_timeout_ms = a.trial_timeout;
  opt.isolate_trials = a.isolate_trials;
  opt.cancel = &g_interrupt;
  opt.obs.progress = a.progress;
  opt.check_invariants = a.check;
  opt.fast_path = !a.no_fast_path;

  std::signal(SIGINT, HandleSigint);
  const SweepResult r = RunSweep(spec, a.axis, opt);
  std::signal(SIGINT, SIG_DFL);

  bool exported = false;
  if (!a.sweep_json.empty() || a.json) {
    if (a.sweep_json.empty() || a.sweep_json == "-") {
      WriteSweepJson(r, std::cout);
    } else {
      auto out = OpenExport(a.sweep_json);
      WriteSweepJson(r, out);
      std::fprintf(stderr, "wrote sweep curves (%zu points) to %s\n",
                   r.points.size(), a.sweep_json.c_str());
    }
    exported = true;
  }
  if (!a.sweep_csv.empty()) {
    if (a.sweep_csv == "-") {
      WriteSweepCsv(r, std::cout);
    } else {
      auto out = OpenExport(a.sweep_csv);
      WriteSweepCsv(r, out);
      std::fprintf(stderr, "wrote sweep CSV to %s\n", a.sweep_csv.c_str());
    }
    exported = true;
  }
  if (!exported) {
    std::printf("suite=%s%s%s workload=%s trials/point=%d sanitizer=%s\n",
                spec.suite.c_str(), a.axis.empty() ? "" : " axis=",
                a.axis.c_str(), spec.workload.c_str(), spec.trials,
                TFI_SANITIZE_NAME);
    for (const SweepPointResult& p : r.points) {
      std::printf("  %-10s ipc=%.2f failures=%5.1f%%%s\n",
                  p.point.label.c_str(), p.golden_ipc, 100.0 * p.failure_rate,
                  p.from_cache ? "  (cached)" : "");
      for (const StructureCell& c : p.structures)
        if (c.utilization >= 0.0)
          std::printf("    %-6s util=%5.1f%% vuln=%5.1f%% trials=%llu\n",
                      c.structure.c_str(), 100.0 * c.utilization,
                      100.0 * c.vulnerability, (unsigned long long)c.trials);
    }
  }
  if (r.interrupted) {
    std::fprintf(stderr,
                 "interrupted: %zu point(s) completed; rerun the same "
                 "command to resume from the checkpoint\n",
                 r.points.size());
    return 130;
  }
  return 0;
}

int Usage() {
  Args dummy;
  std::fprintf(stderr,
               "usage: tfi "
               "<run|exec|campaign|sweep|soft|asmlint|inventory|workloads|"
               "version> ...\n"
               "options:\n%s"
               "see the header of tools/tfi.cpp for details\n",
               MakeParser(dummy).Help().c_str());
  return 2;
}

}  // namespace
}  // namespace tfsim

int main(int argc, char** argv) {
  using namespace tfsim;
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "version" || cmd == "--version") return CmdVersion();
  // Chaos failpoints are armed exclusively by TFI_FAILPOINTS (fault drills
  // and the chaos_smoke ctest); without it this is one env read and the
  // per-site probes stay a single relaxed atomic load.
  if (const int sites = fail::ConfigureFromEnv(); sites > 0)
    std::fprintf(stderr, "tfi: %d failpoint(s) armed from TFI_FAILPOINTS\n",
                 sites);
  const Args args = Parse(argc, argv);
  if (!args.error.empty()) {
    std::fprintf(stderr, "tfi: %s\n", args.error.c_str());
    return Usage();
  }
  try {
    if (cmd == "workloads") return CmdWorkloads();
    if (cmd == "inventory") return CmdInventory(args);
    if (cmd == "run") return CmdRun(args);
    if (cmd == "exec") return CmdExec(args);
    if (cmd == "campaign") return CmdCampaign(args);
    if (cmd == "sweep") return CmdSweep(args);
    if (cmd == "soft") return CmdSoft(args);
    if (cmd == "asmlint") return CmdAsmlint(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tfi: %s\n", e.what());
    return 1;
  }
  return Usage();
}
