// A/B proof that the trial fast path is pure execution policy: the same
// campaign run with --fast-path and --no-fast-path, at 1 and 4 worker
// threads, must produce byte-identical trial records, propagation traces,
// outcome/failure-mode distributions, and heatmap exports. Exits nonzero
// with a diagnostic on the first divergence.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "inject/campaign.h"
#include "inject/report.h"
#include "obs/heatmap.h"
#include "obs/prop_trace.h"

using namespace tfsim;

namespace {

int g_failures = 0;

#define CHECK_EQ(a, b, what)                                              \
  do {                                                                    \
    if (!((a) == (b))) {                                                  \
      std::fprintf(stderr, "FAIL %s: %s\n", label.c_str(), what);         \
      ++g_failures;                                                       \
    }                                                                     \
  } while (0)

std::string TraceRows(const CampaignResult& r) {
  std::ostringstream os;
  for (std::size_t i = 0; i < r.prop_traces.size(); ++i)
    obs::WritePropTraceRow(r.prop_traces[i], r.spec.workload, i, os);
  return os.str();
}

std::string HeatmapJson(const CampaignResult& r) {
  std::ostringstream os;
  BuildHeatmap(r).WriteJson(os, r.spec.workload);
  return os.str();
}

void Compare(const CampaignResult& fast, const CampaignResult& slow,
             const std::string& label) {
  CHECK_EQ(fast.trials.size(), slow.trials.size(), "trial count");
  for (std::size_t i = 0;
       i < fast.trials.size() && i < slow.trials.size(); ++i) {
    const TrialRecord& f = fast.trials[i];
    const TrialRecord& s = slow.trials[i];
    if (f.outcome != s.outcome || f.mode != s.mode || f.cat != s.cat ||
        f.storage != s.storage || f.cycles != s.cycles ||
        f.valid_instrs != s.valid_instrs || f.inflight != s.inflight) {
      std::fprintf(stderr,
                   "FAIL %s: trial %zu records differ "
                   "(fast %s/%s @%u vi=%u if=%u, slow %s/%s @%u vi=%u "
                   "if=%u)\n",
                   label.c_str(), i, OutcomeName(f.outcome),
                   FailureModeName(f.mode), f.cycles, f.valid_instrs,
                   f.inflight, OutcomeName(s.outcome),
                   FailureModeName(s.mode), s.cycles, s.valid_instrs,
                   s.inflight);
      ++g_failures;
    }
  }
  CHECK_EQ(fast.ByOutcome(), slow.ByOutcome(), "outcome distribution");
  CHECK_EQ(fast.ByFailureMode(), slow.ByFailureMode(),
           "failure-mode distribution");
  CHECK_EQ(TraceRows(fast), TraceRows(slow), "propagation-trace rows");
  CHECK_EQ(HeatmapJson(fast), HeatmapJson(slow), "heatmap JSON");
}

CampaignResult RunOne(CampaignSpec spec, bool fast_path, int jobs) {
  CampaignOptions opt;
  opt.jobs = jobs;
  opt.verbose = false;
  opt.use_cache = false;
  opt.fast_path = fast_path;
  opt.obs.collect_prop_traces = true;
  return RunCampaign(spec, opt);
}

}  // namespace

int main() {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 96;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;

  // Single-bit model, jobs 1 and 4: fast vs slow, plus fast@4 vs slow@1
  // (scheduling independence on top of path independence).
  const CampaignResult slow1 = RunOne(spec, /*fast_path=*/false, /*jobs=*/1);
  const CampaignResult fast1 = RunOne(spec, /*fast_path=*/true, /*jobs=*/1);
  const CampaignResult fast4 = RunOne(spec, /*fast_path=*/true, /*jobs=*/4);
  Compare(fast1, slow1, "single-bit jobs=1");
  Compare(fast4, slow1, "single-bit jobs=4 vs slow jobs=1");

  // Multi-bit adjacent bursts exercise the no-early-cutoff rules (cancelled
  // flips, several watched words per trial).
  CampaignSpec burst = spec;
  burst.trials = 48;
  burst.flips = 3;
  burst.adjacent = true;
  {
    const CampaignResult s = RunOne(burst, /*fast_path=*/false, 1);
    const CampaignResult f = RunOne(burst, /*fast_path=*/true, 4);
    const std::string label = "adjacent-burst";
    Compare(f, s, label);
    CHECK_EQ(s.trials.size(), static_cast<std::size_t>(burst.trials),
             "burst trial count");
  }

  // A reshaped core changes the registry's whole word space (field widths,
  // word count), so the fast-path plan and snapshots are built over a
  // different layout — byte-identity must hold there too.
  CampaignSpec shaped = spec;
  shaped.trials = 48;
  shaped.core.rob_entries = 16;
  shaped.core.lq_entries = 8;
  shaped.core.sq_entries = 8;
  shaped.core.phys_regs = 48;
  {
    const CampaignResult s = RunOne(shaped, /*fast_path=*/false, 1);
    const CampaignResult f = RunOne(shaped, /*fast_path=*/true, 4);
    const std::string label = "non-default-geometry";
    Compare(f, s, label);
  }

  if (g_failures) {
    std::fprintf(stderr, "fastpath_ab_smoke: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("fastpath_ab_smoke: fast and slow paths byte-identical "
              "(%d + %d + %d trials, jobs 1 and 4, default and reshaped "
              "cores)\n",
              spec.trials, 48, shaped.trials);
  return 0;
}
