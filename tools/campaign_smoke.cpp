// Quick end-to-end campaign harness (and the threaded-campaign ctest smoke):
// runs one injection campaign and prints the outcome mix, failure modes and
// per-category breakdown.
//
//   campaign_smoke [workload] [--trials N] [--jobs N] [--latches-only]
//                  [--warmup N] [--points N] [--no-cache]
#include <cstdio>
#include <cstdlib>

#include "inject/campaign.h"
#include "util/argparse.h"

using namespace tfsim;

int main(int argc, char** argv) {
  std::int64_t trials = 100, jobs = 1, warmup = 20000, points = 4;
  bool latches_only = false, no_cache = false;
  ArgParser p;
  p.AddInt("trials", &trials, "injection trials");
  p.AddInt("jobs", &jobs, "trial-loop worker threads; 0 = all hardware");
  p.AddInt("warmup", &warmup, "golden-run warmup cycles");
  p.AddInt("points", &points, "checkpoints per golden run");
  p.AddFlag("latches-only", &latches_only, "inject latches only, not RAMs");
  p.AddFlag("no-cache", &no_cache, "skip the on-disk results cache");
  if (!p.Parse(argc, argv) || p.positional().size() > 1) {
    std::fprintf(stderr, "campaign_smoke: %s\nusage: campaign_smoke "
                         "[workload]\n%s",
                 p.error().c_str(), p.Help().c_str());
    return 2;
  }

  CampaignSpec spec;
  spec.workload = p.positional().empty() ? "gzip" : p.positional()[0];
  spec.trials = static_cast<int>(trials);
  spec.include_ram = !latches_only;
  spec.golden.warmup = static_cast<std::uint64_t>(warmup);
  spec.golden.points = static_cast<int>(points);

  CampaignOptions opt;
  opt.jobs = static_cast<int>(jobs);
  opt.use_cache = !no_cache;
  CampaignResult r = RunCampaign(spec, opt);
  const auto o = r.ByOutcome();
  std::printf("workload=%s trials=%zu jobs=%lld ipc=%.2f\n",
              spec.workload.c_str(), r.trials.size(), (long long)jobs,
              r.golden_ipc);
  for (int i = 0; i < kNumOutcomes; ++i)
    std::printf("  %-12s %llu (%.1f%%)\n", OutcomeName(static_cast<Outcome>(i)),
                (unsigned long long)o[i], 100.0 * o[i] / r.trials.size());
  const auto m = r.ByFailureMode();
  for (int i = 1; i < kNumFailureModes; ++i)
    if (m[i]) std::printf("    mode %-8s %llu\n", FailureModeName(static_cast<FailureMode>(i)), (unsigned long long)m[i]);
  // average cycles per trial
  double sum = 0; for (auto&t : r.trials) sum += t.cycles;
  std::printf("  avg cycles/trial: %.0f\n", sum / r.trials.size());
  // per-category breakdown
  for (int c = 0; c < kNumStateCats; ++c) {
    const auto cat = static_cast<StateCat>(c);
    const auto oc = r.ByOutcomeForCat(cat);
    const auto n = r.TrialsForCat(cat);
    if (!n) continue;
    std::printf("  %-13s n=%-4llu match=%llu term=%llu sdc=%llu gray=%llu\n",
                StateCatName(cat), (unsigned long long)n,
                (unsigned long long)oc[0], (unsigned long long)oc[1],
                (unsigned long long)oc[2], (unsigned long long)oc[3]);
  }
  return 0;
}
