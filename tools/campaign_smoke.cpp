#include <cstdio>
#include <cstdlib>

#include "inject/campaign.h"

using namespace tfsim;

int main(int argc, char** argv) {
  CampaignSpec spec;
  spec.workload = argc > 1 ? argv[1] : "gzip";
  spec.trials = argc > 2 ? std::atoi(argv[2]) : 100;
  spec.include_ram = argc > 3 ? std::atoi(argv[3]) != 0 : true;
  spec.golden.warmup = 20000;
  spec.golden.points = 4;
  CampaignResult r = RunCampaign(spec);
  const auto o = r.ByOutcome();
  std::printf("workload=%s trials=%zu ipc=%.2f\n", spec.workload.c_str(), r.trials.size(), r.golden_ipc);
  for (int i = 0; i < kNumOutcomes; ++i)
    std::printf("  %-12s %llu (%.1f%%)\n", OutcomeName(static_cast<Outcome>(i)),
                (unsigned long long)o[i], 100.0 * o[i] / r.trials.size());
  const auto m = r.ByFailureMode();
  for (int i = 1; i < kNumFailureModes; ++i)
    if (m[i]) std::printf("    mode %-8s %llu\n", FailureModeName(static_cast<FailureMode>(i)), (unsigned long long)m[i]);
  // average cycles per trial
  double sum = 0; for (auto&t : r.trials) sum += t.cycles;
  std::printf("  avg cycles/trial: %.0f\n", sum / r.trials.size());
  // per-category breakdown
  for (int c = 0; c < kNumStateCats; ++c) {
    const auto cat = static_cast<StateCat>(c);
    const auto oc = r.ByOutcomeForCat(cat);
    const auto n = r.TrialsForCat(cat);
    if (!n) continue;
    std::printf("  %-13s n=%-4llu match=%llu term=%llu sdc=%llu gray=%llu\n",
                StateCatName(cat), (unsigned long long)n,
                (unsigned long long)oc[0], (unsigned long long)oc[1],
                (unsigned long long)oc[2], (unsigned long long)oc[3]);
  }
  return 0;
}
