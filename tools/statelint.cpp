// statelint — static verification of the injection surface.
//
//   statelint --src src/uarch --allow tools/statelint_allow.txt
//       lint the pipeline sources: every mutable member of a registry-backed
//       class must be a registered StateField or an audited allowlist
//       exception; registered fields must be read back and sanely
//       classified. Exit code = number of findings (0 = surface verified).
//
//   statelint ... --no-runtime    skip the live-registry cross-check
//   statelint ... --list          also dump the extracted model
//
// Runs as the `statelint_src` ctest, making Table-1 completeness a
// CI-enforced invariant instead of a code-review convention.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/statelint.h"
#include "uarch/core.h"
#include "util/argparse.h"

using namespace tfsim;
using namespace tfsim::analyze;

namespace {

std::vector<std::string> CollectSources(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp")
      out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string src;
  std::string allow_path;
  bool no_runtime = false;
  bool list = false;
  ArgParser ap;
  ap.AddStr("src", &src, "directory of pipeline sources to lint");
  ap.AddStr("allow", &allow_path, "allowlist of audited exceptions");
  ap.AddFlag("no-runtime", &no_runtime,
             "skip the live-registry cross-check (pure static run)");
  ap.AddFlag("list", &list, "dump the extracted classes and allocations");
  if (!ap.Parse(argc, argv) || !ap.positional().empty() || src.empty()) {
    std::fprintf(stderr, "%s\nusage: statelint --src DIR [--allow FILE]\n%s",
                 ap.error().empty() ? "missing --src" : ap.error().c_str(),
                 ap.Help().c_str());
    return 2;
  }

  try {
    const std::vector<std::string> sources = CollectSources(src);
    if (sources.empty()) {
      std::fprintf(stderr, "statelint: no sources under %s\n", src.c_str());
      return 2;
    }
    CppModel model = ParseCppFiles(sources);

    std::vector<AllowEntry> allow;
    if (!allow_path.empty()) {
      std::string error;
      if (!ParseAllowlist(ReadFile(allow_path), &allow, &error)) {
        std::fprintf(stderr, "statelint: %s\n", error.c_str());
        return 2;
      }
    }

    if (list) {
      for (const CppClass& c : model.classes) {
        std::printf("class %s (%s:%d)%s\n", c.name.c_str(), c.file.c_str(),
                    c.line, c.registry_ctor ? " [registry ctor]" : "");
        for (const CppMember& m : c.members)
          std::printf("  %-24s %s%s%s%s\n", m.name.c_str(), m.type.c_str(),
                      m.is_state_field ? " [field]" : "",
                      m.is_static ? " [static]" : "",
                      m.is_const ? " [const]" : "");
      }
      for (const CppAllocation& a : model.allocations)
        std::printf("alloc %-28s %s.%s cat=%s storage=%s count=%s width=%s\n",
                    (a.name_is_suffix ? "*" + a.reg_name : a.reg_name).c_str(),
                    a.class_name.c_str(), a.member.c_str(), a.cat.c_str(),
                    a.storage.c_str(), a.count_expr.c_str(),
                    a.width_expr.c_str());
    }

    LintOptions opt;
    std::vector<StateRegistry::FieldInfo> runtime;
    if (!no_runtime) {
      // Fully-protected configuration so conditionally-allocated fields
      // (parity, ECC, timeout counter) are present for the cross-check.
      CoreConfig cfg;
      cfg.protect = ProtectionConfig::All();
      const Core core(cfg, Program{});
      runtime = core.registry().Fields();
      opt.runtime_fields = &runtime;
    }

    const std::vector<Finding> findings = RunStateLint(model, allow, opt);
    for (const Finding& f : findings)
      std::fprintf(stderr, "%s\n", f.Format().c_str());
    if (findings.empty()) {
      std::printf(
          "statelint: %zu classes, %zu allocations, %zu allowlisted "
          "exceptions — injection surface verified\n",
          model.classes.size(), model.allocations.size(), allow.size());
    } else {
      std::fprintf(stderr, "statelint: %zu finding(s)\n", findings.size());
    }
    return static_cast<int>(findings.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "statelint: %s\n", e.what());
    return 2;
  }
}
