// Lockstep co-simulation check: run each workload on the detailed pipeline
// and the functional simulator simultaneously, comparing every retire event
// and (by default) auditing the per-cycle structural invariants. Registered
// as the `cosim_all_workloads` ctest; exits with the number of failing
// workloads.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/functional_sim.h"
#include "check/invariants.h"
#include "uarch/core.h"
#include "util/argparse.h"
#include "workloads/workloads.h"

using namespace tfsim;

int main(int argc, char** argv) {
  std::int64_t cycles = 20000;
  std::string only;
  bool no_check = false;
  ArgParser ap;
  ap.AddInt("cycles", &cycles, "lockstep cycles per workload");
  ap.AddStr("workload", &only, "run only this workload");
  ap.AddFlag("no-check", &no_check, "disable the per-cycle invariant checker");
  if (!ap.Parse(argc, argv) || !ap.positional().empty()) {
    std::fprintf(stderr, "%s\nusage: cosim_smoke [flags]\n%s",
                 ap.error().empty() ? "unexpected positional argument"
                                    : ap.error().c_str(),
                 ap.Help().c_str());
    return 2;
  }

  CoreConfig cfg;
  cfg.check_invariants = !no_check;
  int failures = 0;
  for (const auto& w : AllWorkloads()) {
    if (!only.empty() && w.name != only) continue;
    Program prog = BuildWorkload(w, kCampaignIters);
    Core core(cfg, prog);
    FunctionalSim ref(prog);
    std::uint64_t checked = 0;
    bool ok = true;
    for (std::int64_t c = 0; c < cycles && ok; ++c) {
      core.Cycle();
      if (core.halted_exception() != Exception::kNone) {
        std::printf("[%s] pipeline exception %s at cycle %lld\n",
                    w.name.c_str(), ExceptionName(core.halted_exception()),
                    (long long)c);
        ok = false;
        break;
      }
      if (core.itlb_miss()) {
        std::printf("[%s] itlb miss at cycle %lld addr=0x%llx\n",
                    w.name.c_str(), (long long)c,
                    (unsigned long long)core.itlb_addr());
        ok = false;
        break;
      }
      for (const RetireEvent& ev : core.RetiredThisCycle()) {
        const RetireEvent want = ref.Step();
        if (!(ev == want)) {
          std::printf(
              "[%s] MISMATCH at retire #%llu cycle %lld\n  core: %s\n"
              "  ref : %s\n",
              w.name.c_str(), (unsigned long long)checked, (long long)c,
              ToString(ev).c_str(), ToString(want).c_str());
          ok = false;
          break;
        }
        ++checked;
      }
      if (const check::InvariantChecker* chk = core.invariant_checker();
          chk && chk->total() != 0) {
        const check::InvariantViolation& v = chk->violations().front();
        std::printf("[%s] INVARIANT VIOLATION [%s] at cycle %llu: %s\n",
                    w.name.c_str(), check::InvariantKindName(v.kind),
                    (unsigned long long)v.cycle, v.detail.c_str());
        ok = false;
      }
    }
    const auto& st = core.stats();
    std::printf(
        "[%-7s] %s: retired=%llu cycles=%llu IPC=%.2f bp=%.1f%% d$miss=%llu "
        "repl=%llu viol=%llu\n",
        w.name.c_str(), ok ? "OK" : "FAIL", (unsigned long long)st.retired,
        (unsigned long long)st.cycles, st.Ipc(),
        st.branches
            ? 100.0 * (1.0 - (double)st.mispredicts / (double)st.branches)
            : 0.0,
        (unsigned long long)st.dcache_misses, (unsigned long long)st.replays,
        (unsigned long long)st.order_violations);
    if (!ok) ++failures;
  }
  return failures;
}
