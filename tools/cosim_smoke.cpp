// Throwaway debugging harness: run each workload on the pipeline and the
// functional simulator in lockstep, comparing retire events.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/functional_sim.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

using namespace tfsim;

int main(int argc, char** argv) {
  const std::uint64_t cycles = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const std::string only = argc > 2 ? argv[2] : "";
  int failures = 0;
  for (const auto& w : AllWorkloads()) {
    if (!only.empty() && w.name != only) continue;
    Program prog = BuildWorkload(w, kCampaignIters);
    Core core(CoreConfig{}, prog);
    FunctionalSim ref(prog);
    std::uint64_t checked = 0;
    bool ok = true;
    for (std::uint64_t c = 0; c < cycles && ok; ++c) {
      core.Cycle();
      if (core.halted_exception() != Exception::kNone) {
        std::printf("[%s] pipeline exception %s at cycle %llu\n", w.name.c_str(),
                    ExceptionName(core.halted_exception()), (unsigned long long)c);
        ok = false; break;
      }
      if (core.itlb_miss()) {
        std::printf("[%s] itlb miss at cycle %llu addr=0x%llx\n", w.name.c_str(),
                    (unsigned long long)c, (unsigned long long)core.itlb_addr());
        ok = false; break;
      }
      for (const RetireEvent& ev : core.RetiredThisCycle()) {
        const RetireEvent want = ref.Step();
        if (!(ev == want)) {
          std::printf("[%s] MISMATCH at retire #%llu cycle %llu\n  core: %s\n  ref : %s\n",
                      w.name.c_str(), (unsigned long long)checked,
                      (unsigned long long)c, ToString(ev).c_str(),
                      ToString(want).c_str());
          ok = false;
          break;
        }
        ++checked;
      }
    }
    const auto& st = core.stats();
    std::printf("[%-7s] %s: retired=%llu cycles=%llu IPC=%.2f bp=%.1f%% d$miss=%llu repl=%llu viol=%llu\n",
                w.name.c_str(), ok ? "OK" : "FAIL",
                (unsigned long long)st.retired, (unsigned long long)st.cycles,
                st.Ipc(),
                st.branches ? 100.0 * (1.0 - (double)st.mispredicts / (double)st.branches) : 0.0,
                (unsigned long long)st.dcache_misses,
                (unsigned long long)st.replays,
                (unsigned long long)st.order_violations);
    if (!ok) ++failures;
  }
  return failures;
}
