// CTest smoke for the observability layer: runs a 20-trial campaign with all
// three telemetry exports enabled (metrics JSON, propagation-trace JSONL,
// chrome trace), writes them to a scratch directory, and validates every
// output with the built-in JSON checker — no python dependency.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "inject/campaign.h"
#include "inject/report.h"
#include "obs/chrome_trace.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

using namespace tfsim;

namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  std::printf("%-52s %s\n", what.c_str(), ok ? "ok" : "FAIL");
  if (!ok) ++g_failures;
}

std::string Slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main() {
  const auto dir =
      std::filesystem::temp_directory_path() / "tfsim_obs_smoke";
  std::filesystem::create_directories(dir);
  // Keep the campaign cache out of the build tree (and out of future runs'
  // way — traced campaigns bypass cache loads anyway).
  setenv("TFI_CACHE_DIR", (dir / "cache").c_str(), 1);

  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 20;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;

  obs::MetricsRegistry metrics;
  obs::ChromeTraceWriter chrome;
  CampaignOptions opt;
  opt.verbose = false;
  opt.obs.sinks.metrics = &metrics;
  opt.obs.sinks.chrome = &chrome;
  opt.obs.collect_prop_traces = true;

  const CampaignResult r = RunCampaign(spec, opt);
  Check(r.trials.size() == 20, "campaign ran 20 trials");
  Check(r.prop_traces.size() == 20, "one propagation trace per trial");

  // --- metrics JSON --------------------------------------------------------
  const auto metrics_path = dir / "metrics.json";
  {
    std::ofstream out(metrics_path);
    metrics.WriteJson(out);
  }
  const std::string mjson = Slurp(metrics_path);
  std::string err;
  Check(obs::JsonLint(mjson, &err), "metrics.json parses (" + err + ")");
  Check(mjson.find("\"pipe.rob.occupancy\"") != std::string::npos,
        "metrics include pipeline occupancy histograms");
  Check(mjson.find("\"campaign.trials\"") != std::string::npos,
        "metrics include campaign counters");

  // --- propagation-trace JSONL --------------------------------------------
  const auto jsonl_path = dir / "prop.jsonl";
  {
    std::ofstream out(jsonl_path);
    WritePropTraceJsonl(r, out);
  }
  std::ifstream jsonl(jsonl_path);
  std::string line;
  int rows = 0, headers = 0;
  bool rows_parse = true, rows_complete = true, header_versioned = true;
  while (std::getline(jsonl, line)) {
    std::string lerr;
    if (!obs::JsonLint(line, &lerr)) {
      rows_parse = false;
      std::fprintf(stderr, "line %d: %s\n", rows + headers + 1, lerr.c_str());
    }
    // Schema v2 exports lead with a header line; readers (this one included)
    // must keep accepting header-less v1 files, so the header is optional
    // but, when present, must carry the schema version.
    if (line.find("\"type\":\"header\"") != std::string::npos) {
      ++headers;
      if (line.find("\"schema_version\"") == std::string::npos ||
          line.find("\"generated_at\"") == std::string::npos)
        header_versioned = false;
      continue;
    }
    ++rows;
    // Every row must carry outcome, injection category, and divergence cycle.
    for (const char* key : {"\"outcome\"", "\"category\"",
                            "\"arch_divergence_cycle\"", "\"trial\""})
      if (line.find(key) == std::string::npos) rows_complete = false;
  }
  Check(rows == 20, "prop.jsonl has one row per trial");
  Check(headers == 1 && header_versioned,
        "prop.jsonl header carries schema_version/generated_at");
  Check(rows_parse, "every prop.jsonl line parses as JSON");
  Check(rows_complete, "every row has outcome/category/divergence keys");

  // --- chrome trace --------------------------------------------------------
  const auto trace_path = dir / "trace.json";
  {
    std::ofstream out(trace_path);
    chrome.WriteTo(out);
  }
  const std::string tjson = Slurp(trace_path);
  Check(obs::JsonLint(tjson, &err), "trace.json parses (" + err + ")");
  Check(tjson.find("\"traceEvents\"") != std::string::npos &&
            tjson.find("\"ph\":\"X\"") != std::string::npos &&
            tjson.find("\"ph\":\"C\"") != std::string::npos,
        "trace has occupancy counters and trial spans");

  std::printf("obs_smoke: %s\n", g_failures ? "FAILED" : "PASSED");
  return g_failures ? 1 : 0;
}
